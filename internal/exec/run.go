package exec

import (
	"context"
	"fmt"
	"time"

	"cdb/internal/cost"
	"cdb/internal/crowd"
	"cdb/internal/graph"
	"cdb/internal/meta"
	"cdb/internal/obs"
	"cdb/internal/quality"
	"cdb/internal/stats"
)

// Executor metrics: totals across all queries of the process plus
// per-query shape histograms (how many rounds/tasks a query takes).
var (
	mQueries    = obs.Default.Counter("cdb_exec_queries_total")
	mRounds     = obs.Default.Counter("cdb_exec_rounds_total")
	mTasks      = obs.Default.Counter("cdb_exec_tasks_total")
	mQueryTasks = obs.Default.Histogram("cdb_exec_query_tasks", obs.SizeBuckets)
	mQueryRnds  = obs.Default.Histogram("cdb_exec_query_rounds", obs.SizeBuckets)
	// Phase-duration histograms: where a query's wall clock goes. The
	// round histogram observes each completed crowd round end to end;
	// issue isolates the task-issue/answer-collection slice of it.
	mPhaseRound = obs.Default.Histogram("cdb_exec_phase_round_seconds", obs.DurationBuckets)
	mPhaseIssue = obs.Default.Histogram("cdb_exec_phase_issue_seconds", obs.DurationBuckets)
)

// QualityMode selects the answer-aggregation machinery.
type QualityMode int

// Quality modes.
const (
	// MajorityVoting is the baseline used by CrowdDB/Qurk/Deco and by
	// plain CDB: k answers per task, plurality wins.
	MajorityVoting QualityMode = iota
	// CDBPlus enables §5.3: EM truth inference with a persistent worker
	// model, entropy-driven task assignment and confidence-based early
	// stopping.
	CDBPlus
)

// String implements fmt.Stringer.
func (m QualityMode) String() string {
	if m == CDBPlus {
		return "cdb+"
	}
	return "majority-voting"
}

// RoundUpdate is a progress snapshot emitted at the end of every
// completed crowd round. It is what a serving layer streams to remote
// clients while a long-lived crowd query trickles in: what this round
// asked, how the crowd ruled, and how much of the query graph remains
// open. Rounds discarded by cancellation never emit an update, so the
// number of updates always equals the final Metrics.Rounds.
type RoundUpdate struct {
	// Round is the 1-based index of the round that just completed.
	Round int `json:"round"`
	// Tasks and Assignments count this round's crowd work: tasks
	// issued and worker answers collected.
	Tasks       int `json:"tasks"`
	Assignments int `json:"assignments"`
	// Blue and Red split this round's verdicts: edges the crowd judged
	// matching vs non-matching.
	Blue int `json:"blue"`
	Red  int `json:"red"`
	// TasksTotal and AssignmentsTotal accumulate across rounds.
	TasksTotal       int `json:"tasks_total"`
	AssignmentsTotal int `json:"assignments_total"`
	// Open counts the valid uncolored edges still in play — the
	// crowd work that may remain.
	Open int `json:"open"`
	// Inferred counts edges this round labeled by transitive inference
	// instead of crowd work (zero unless Options.Transitive).
	Inferred int `json:"inferred,omitempty"`
}

// Options configures one execution.
type Options struct {
	// Strategy performs cost control. Required.
	Strategy cost.Strategy
	// Redundancy is the number of answers per task (paper default 5).
	Redundancy int
	// Quality selects aggregation; CDBPlus adds task assignment.
	Quality QualityMode
	// MaxRounds bounds latency (Fig. 22): the last permitted round
	// floods Strategy.Flush. 0 means unbounded.
	MaxRounds int
	// Pool simulates the crowd. Required.
	Pool *crowd.Pool
	// Workers persists quality estimates across queries (CDB's worker
	// metadata); created fresh when nil.
	Workers *quality.WorkerModel
	// Confidence is CDBPlus's early-stop posterior threshold
	// (default 0.95).
	Confidence float64
	// Pricing computes HIT cost; zero value uses crowd.DefaultPricing.
	Pricing crowd.Pricing
	// Router optionally spreads tasks across several crowdsourcing
	// markets (§2.2's cross-market deployment). When set, each task's
	// answers come from the routed market's pool; Pool remains the
	// fallback (and the CDB+ assignment pool, whose persistent worker
	// model needs one consistent ID space).
	Router *crowd.Router
	// Meta optionally records every task, assignment and verdict into
	// CDB's relational metadata store (§2.1).
	Meta *meta.Store
	// Calibrate turns on adaptive probability calibration (§4.1's
	// trained similarity→probability mapping): every answered task is a
	// labelled pair, and once enough evidence accumulates the remaining
	// edges are re-weighted with isotonic-calibrated probabilities.
	Calibrate bool
	// Trace receives the execution's lifecycle spans (one per round,
	// with scoring/batching/issue/inference children). nil disables
	// tracing; the round loop then pays a single branch per round and
	// allocates nothing for observability.
	Trace *obs.Tracer
	// Transport switches crowdsourcing to the fault-tolerant
	// asynchronous issue/collect protocol (per-HIT deadlines, hedging,
	// retry with backoff, idempotent answer dedup). nil keeps the
	// synchronous simulator path. The caller owns the transport's
	// lifecycle (Close).
	Transport *crowd.Transport
	// Reliability tunes the async policy; the zero value means
	// defaults. Reliability.Strict turns degradation into errors.
	Reliability Reliability
	// Resolver, when set, routes every crowd task through a shared
	// serving layer (the engine's HIT coalescer) instead of the local
	// pool or transport. It takes precedence over Transport and the
	// quality modes — the resolver owns aggregation.
	Resolver TaskResolver
	// Progress, when set, is invoked synchronously at the end of every
	// completed crowd round with a RoundUpdate snapshot (nil-safe, like
	// the tracer). It runs on the executing goroutine: a slow consumer
	// delays the next round, so hand off to a channel for streaming.
	Progress func(RoundUpdate)
	// Transitive enables transitive inference over crowd answers
	// (within each predicate, A=B ∧ B=C entails A=C and A=B ∧ B≠C
	// entails A≠C): after every round the entailed labels are colored
	// into the graph for free, closure-aware strategies stop asking
	// entailed edges, and Report gains Inferred / Provenance.
	Transitive bool
}

// Report is the outcome of one execution.
type Report struct {
	Metrics     stats.Metrics
	Assignments int     // worker answers collected
	HITs        int     // priced HITs
	Dollars     float64 // simulated spend
	Answers     []graph.Embedding
	// Confidence holds the executor's confidence in each answer,
	// aligned with Answers: the minimum verdict confidence over the
	// answer's edges (majority margin, Bayesian posterior, or — for
	// tasks lost to faults — the optimizer's prior). 1.0 for edges
	// decided without the crowd.
	Confidence []float64
	// Reliability reports the fault policy's view of the execution;
	// Reliability.Partial marks a gracefully degraded result.
	Reliability ReliabilityStats
	// Coalesced / CachedTasks count tasks answered by a shared
	// TaskResolver without fresh crowd work: attached to another
	// query's in-flight HIT, or served from the shared verdict cache.
	// Zero off the resolver path.
	Coalesced   int
	CachedTasks int
	// LedgerTasks counts tasks served from the durable crowd-work
	// ledger (paid before a restart, replayed free). Not part of the
	// wire Stats: a resumed query's Result stays byte-identical to an
	// uninterrupted run; the split surfaces via introspection and
	// engine counters only.
	LedgerTasks int
	// Inferred counts edges labeled by transitive inference instead of
	// crowd work; Provenance breaks each answer's supporting edges down
	// by origin, aligned with Answers. Both zero/nil unless
	// Options.Transitive.
	Inferred   int
	Provenance []AnswerProvenance
	// PerMarket counts tasks routed to each market when a Router is
	// configured (async transport: accepted answers per market).
	PerMarket map[string]int

	// emHistory accumulates every CDB+ task across rounds so truth
	// inference always runs over the full evidence (worker quality
	// estimates sharpen as the query progresses).
	emHistory []quality.ChoiceTask
	// histIndex maps a graph edge to its emHistory entry so stragglers
	// from finished rounds can still feed the worker model.
	histIndex map[int]int
	// seen implements idempotent answer dedup: edge → workers whose
	// answer was already counted.
	seen map[int]map[int]bool
	// edgeConf records per-edge verdict confidence.
	edgeConf map[int]float64
	// crowdEdges / inferredEdges track per-edge label origin for
	// Provenance (only populated in transitive mode).
	crowdEdges    map[int]bool
	inferredEdges map[int]bool
	// retryBudget is the query-wide allowance of reissued assignments.
	retryBudget int
}

// Run executes the plan with Algorithm 1. The plan's graph is mutated
// (colored); build a fresh plan per run.
//
// ctx cancels or deadlines the query: the executor checks it at round
// boundaries and inside every async collect. Unless
// Reliability.Strict is set, cancellation degrades gracefully — the
// in-flight round is discarded wholesale and Run returns a partial
// Report (Reliability.Partial) reflecting exactly the completed
// rounds, which keeps the partial result deterministic for a fixed
// seed no matter when the cancellation lands.
func Run(ctx context.Context, p *Plan, opts Options) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Strategy == nil {
		return nil, fmt.Errorf("exec: Options.Strategy is required")
	}
	if opts.Pool == nil {
		return nil, fmt.Errorf("exec: Options.Pool is required")
	}
	if opts.Redundancy <= 0 {
		opts.Redundancy = 5
	}
	if opts.Confidence <= 0 {
		opts.Confidence = 0.95
	}
	if opts.Workers == nil {
		opts.Workers = quality.NewWorkerModel()
	}
	if opts.Pricing.TasksPerHIT == 0 {
		opts.Pricing = crowd.DefaultPricing
	}
	opts.Reliability = opts.Reliability.withDefaults()

	mQueries.Inc()
	rep := &Report{retryBudget: opts.Reliability.RetryBudget}
	g := p.G
	tr := opts.Trace
	// Attribute the strategy's internal phases (scoring, batching) and
	// its score-cache activity to this query's trace.
	if tc, ok := opts.Strategy.(obs.TraceCarrier); ok {
		tc.SetTracer(tr)
		defer tc.SetTracer(nil)
	}
	cacheStats, _ := opts.Strategy.(obs.CacheStatser)

	var closure *graph.Closure
	if opts.Transitive {
		closure = graph.NewClosure(g)
		// Inferred labels inherit the weakest verdict confidence on
		// their entailing path; edges colored without a verdict (exact
		// equi-joins) count as certain.
		closure.ConfFn = func(e int) float64 {
			if v, ok := rep.edgeConf[e]; ok {
				return v
			}
			return 1
		}
		if cc, ok := opts.Strategy.(ClosureCarrier); ok {
			cc.SetClosure(closure)
			defer cc.SetClosure(nil)
		}
	}

	var calib *quality.Calibrator
	var rawW []float64
	calibAnnounced := false
	if opts.Calibrate {
		calib = quality.NewCalibrator(10)
		rawW = make([]float64, g.NumEdges())
		for e := 0; e < g.NumEdges(); e++ {
			rawW[e] = g.Edge(e).W
		}
	}
	rounds, tasks := 0, 0
	abort := func(err error) error {
		// Graceful degradation: surface what completed instead of the
		// error, unless the caller asked for fail-fast.
		if opts.Reliability.Strict {
			return err
		}
		rep.Reliability.Partial = true
		rep.Reliability.Reason = reasonOf(err)
		return nil
	}
	for {
		if err := ctx.Err(); err != nil {
			if aerr := abort(err); aerr != nil {
				return nil, aerr
			}
			break
		}
		roundStart := time.Now()
		roundSpan := tr.Begin(obs.SpanRound)
		validBefore := 0
		var cacheF0, cacheD0, cacheH0 uint64
		if tr != nil {
			validBefore = g.CountValidUncolored()
			if cacheStats != nil {
				cacheF0, cacheD0, cacheH0 = cacheStats.CacheStats()
			}
		}

		var batch []int
		if opts.MaxRounds > 0 && rounds == opts.MaxRounds-1 {
			batch = opts.Strategy.Flush(g)
		} else {
			batch = opts.Strategy.NextRound(g)
		}
		batch, err := dedupeUncolored(g, batch)
		if err != nil {
			// Wrap with query + round context so a misbehaving strategy
			// is attributable from the error alone.
			err = fmt.Errorf("exec: %s: round %d: %w", opts.Strategy.Name(), rounds+1, err)
			tr.Mutate(roundSpan, func(s *obs.Span) { s.Err = err.Error() })
			tr.End(roundSpan)
			return nil, err
		}
		if len(batch) == 0 {
			// The final strategy probe that found nothing to ask: not a
			// crowd round, but its scoring work is real — keep the span
			// under a distinct name so round spans count exactly
			// Metrics.Rounds.
			tr.Mutate(roundSpan, func(s *obs.Span) { s.Name = obs.SpanDrain })
			tr.End(roundSpan)
			break
		}
		// Snapshot the rollback state: if the round aborts mid-flight
		// (context cancellation inside an async collect) it is
		// discarded wholesale, so the partial result reflects exactly
		// the completed rounds and stays deterministic regardless of
		// where in the round the cancellation landed.
		asksBefore := rep.Assignments
		relBefore := rep.Reliability
		budgetBefore := rep.retryBudget
		coalescedBefore, cachedBefore := rep.Coalesced, rep.CachedTasks
		var perMarketBefore map[string]int
		if opts.Transport != nil && rep.PerMarket != nil {
			perMarketBefore = make(map[string]int, len(rep.PerMarket))
			for k, v := range rep.PerMarket {
				perMarketBefore[k] = v
			}
		}

		issueStart := time.Now()
		issueSpan := tr.Begin(obs.SpanIssue)
		var verdicts map[int]bool
		var roundErr error
		switch {
		case opts.Resolver != nil:
			verdicts, roundErr = rep.crowdsourceResolver(ctx, p, batch, opts)
		case opts.Transport != nil:
			verdicts, roundErr = rep.crowdsourceAsync(ctx, p, batch, opts)
		case opts.Quality == CDBPlus:
			verdicts = rep.crowdsourceAdaptive(p, batch, opts)
		default:
			verdicts = rep.crowdsourceMajority(p, batch, opts)
		}
		mPhaseIssue.Observe(time.Since(issueStart).Seconds())
		tr.Mutate(issueSpan, func(s *obs.Span) {
			s.Tasks = len(batch)
			s.Asks = rep.Assignments - asksBefore
		})
		tr.End(issueSpan)
		if roundErr != nil {
			tr.Mutate(roundSpan, func(s *obs.Span) { s.Err = roundErr.Error() })
			tr.End(roundSpan)
			if aerr := abort(roundErr); aerr != nil {
				return nil, aerr
			}
			// Roll the discarded round back out of the report.
			rep.Assignments = asksBefore
			rep.Coalesced, rep.CachedTasks = coalescedBefore, cachedBefore
			relTrunc := relBefore
			relTrunc.Partial = rep.Reliability.Partial
			relTrunc.Reason = rep.Reliability.Reason
			relTrunc.RoundsTruncated++
			rep.Reliability = relTrunc
			rep.retryBudget = budgetBefore
			if opts.Transport != nil {
				rep.PerMarket = perMarketBefore
			}
			break
		}
		rounds++
		tasks += len(batch)
		mRounds.Inc()
		mTasks.Add(int64(len(batch)))

		colorSpan := tr.Begin(obs.SpanColor)
		blue, red := 0, 0
		for e, match := range verdicts {
			if match {
				g.SetColor(e, graph.Blue)
				blue++
			} else {
				g.SetColor(e, graph.Red)
				red++
			}
			if closure != nil {
				rep.markCrowd(e)
			}
			if calib != nil {
				calib.Observe(rawW[e], match)
			}
		}
		if calib != nil && calib.Fitted() {
			if !calibAnnounced {
				calibAnnounced = true
				tr.Event("calibration-fitted", nil)
			}
			for e := 0; e < g.NumEdges(); e++ {
				if g.Edge(e).Color == graph.Unknown {
					g.SetWeight(e, calib.Prob(rawW[e]))
				}
			}
		}
		tr.End(colorSpan)

		inferredRound := 0
		if closure != nil {
			inferredRound = rep.applyInference(p, closure, opts)
			if inferredRound > 0 {
				n := inferredRound
				tr.Event("inference", func(s *obs.Span) { s.Tasks = n })
			}
		}

		if tr != nil {
			validAfter := g.CountValidUncolored()
			colored := len(verdicts) + inferredRound
			round := rounds
			tr.Mutate(roundSpan, func(s *obs.Span) {
				s.Round = round
				s.Tasks = len(batch)
				s.Asks = rep.Assignments - asksBefore
				s.Blue = blue
				s.Red = red
				s.Edges = validAfter
				if pruned := validBefore - validAfter - colored; pruned > 0 {
					s.Pruned = pruned
				}
				if cacheStats != nil {
					f1, d1, h1 := cacheStats.CacheStats()
					s.CacheFull = int(f1 - cacheF0)
					s.CacheDelta = int(d1 - cacheD0)
					s.CacheHit = int(h1 - cacheH0)
				}
			})
		}
		tr.End(roundSpan)
		mPhaseRound.Observe(time.Since(roundStart).Seconds())
		if opts.Progress != nil {
			opts.Progress(RoundUpdate{
				Round:            rounds,
				Tasks:            len(batch),
				Assignments:      rep.Assignments - asksBefore,
				Blue:             blue,
				Red:              red,
				TasksTotal:       tasks,
				AssignmentsTotal: rep.Assignments,
				Open:             g.CountValidUncolored(),
				Inferred:         inferredRound,
			})
		}
		if opts.MaxRounds > 0 && rounds >= opts.MaxRounds {
			break
		}
	}

	// Strategies that crowdsource tasks outside the query graph (the
	// ER baselines' within-side dedup pairs) report them here.
	if et, ok := opts.Strategy.(interface{ ExtraTasks() int }); ok {
		if extra := et.ExtraTasks(); extra > 0 {
			tasks += extra
			rep.Assignments += extra * opts.Redundancy
			mTasks.Add(int64(extra))
			tr.Event("extra-tasks", func(s *obs.Span) { s.Tasks = extra })
		}
	}

	if rep.Reliability.Lost > 0 {
		rep.Reliability.Partial = true
		if rep.Reliability.Reason == "" {
			rep.Reliability.Reason = "tasks-lost"
		}
	}
	if rep.Reliability.Partial {
		mPartials.Inc()
	}
	rep.Answers = g.Answers()
	if closure != nil {
		rep.assembleProvenance()
	}
	if rep.edgeConf != nil {
		rep.Confidence = make([]float64, len(rep.Answers))
		for i, a := range rep.Answers {
			c := 1.0
			for _, eid := range a.Edges {
				if v, ok := rep.edgeConf[eid]; ok && v < c {
					c = v
				}
			}
			rep.Confidence[i] = c
		}
	}
	precision, recall := stats.PrecisionRecall(p.AnswerKeys(), p.TrueAnswerKeys())
	rep.Metrics = stats.Metrics{Tasks: tasks, Rounds: rounds, Precision: precision, Recall: recall}
	rep.HITs = opts.Pricing.HITs(rep.Assignments)
	rep.Dollars = opts.Pricing.Cost(rep.Assignments)
	mQueryTasks.Observe(float64(tasks))
	mQueryRnds.Observe(float64(rounds))
	return rep, nil
}

// dedupeUncolored drops duplicate and already-colored edges from a
// strategy's batch, rejecting out-of-range ids (a buggy strategy used
// to panic deep inside the graph instead).
func dedupeUncolored(g *graph.Graph, batch []int) ([]int, error) {
	seen := map[int]bool{}
	var out []int
	for _, e := range batch {
		if e < 0 || e >= g.NumEdges() {
			return nil, fmt.Errorf("batch edge %d out of range [0,%d)", e, g.NumEdges())
		}
		if seen[e] || g.Edge(e).Color != graph.Unknown {
			continue
		}
		seen[e] = true
		out = append(out, e)
	}
	return out, nil
}

// crowdsourceMajority asks k distinct workers per task and majority-
// votes the answers. With a Router configured, consecutive tasks are
// dealt across markets (cross-market HIT deployment).
func (rep *Report) crowdsourceMajority(p *Plan, batch []int, opts Options) map[int]bool {
	verdicts := make(map[int]bool, len(batch))
	for _, e := range batch {
		pool := opts.Pool
		if opts.Router != nil {
			if m := opts.Router.Route(); m != nil {
				pool = m.Pool
				if rep.PerMarket == nil {
					rep.PerMarket = map[string]int{}
				}
				rep.PerMarket[m.Name]++
			}
		}
		workers := pool.DistinctArrivals(opts.Redundancy)
		taskID := -1
		if opts.Meta != nil {
			pred, l, r := p.TaskDescription(e)
			taskID = opts.Meta.RecordTask(taskKindOf(p, e), pred, l, r, rep.Metrics.Rounds)
		}
		yes := 0
		for _, w := range workers {
			ans := w.AnswerBool(p.Truth[e])
			if ans {
				yes++
			}
			if opts.Meta != nil {
				opts.Meta.RecordAssignment(taskID, w.ID, boolAnswer(ans))
			}
		}
		rep.Assignments += len(workers)
		verdicts[e] = 2*yes > len(workers)
		conf := float64(yes) / float64(len(workers))
		if !verdicts[e] {
			conf = 1 - conf
		}
		rep.setEdgeConf(e, conf)
		if opts.Meta != nil {
			_ = opts.Meta.RecordVerdict(taskID, verdicts[e])
		}
	}
	return verdicts
}

func boolAnswer(b bool) string {
	if b {
		return "match"
	}
	return "nonmatch"
}

// taskKindOf distinguishes selection tasks (one side is a constant)
// from join tasks.
func taskKindOf(p *Plan, edgeID int) meta.TaskKind {
	if p.Bindings[p.G.Edge(edgeID).Pred].RightCol < 0 {
		return meta.TaskSelection
	}
	return meta.TaskJoin
}

// crowdsourceAdaptive implements CDB+ quality control for one round:
// every task receives one answer, then the remaining k·|batch|−|batch|
// answer slots go to the tasks with the highest expected entropy
// reduction for each arriving worker (Eq. 3), skipping tasks already
// confident. Truth is inferred by EM (updating the persistent worker
// model) and Bayesian voting (Eq. 2).
func (rep *Report) crowdsourceAdaptive(p *Plan, batch []int, opts Options) map[int]bool {
	k := opts.Redundancy
	budget := k * len(batch)
	maxPerTask := 2 * k

	taskList := make([]quality.ChoiceTask, len(batch))
	answeredBy := make([]map[int]bool, len(batch))
	for i := range taskList {
		taskList[i].Choices = 2
		answeredBy[i] = map[int]bool{}
	}
	posteriors := make([][]float64, len(batch))
	for i := range posteriors {
		posteriors[i] = []float64{0.5, 0.5}
	}
	metaIDs := make([]int, len(batch))
	for i := range metaIDs {
		metaIDs[i] = -1
		if opts.Meta != nil {
			pred, l, r := p.TaskDescription(batch[i])
			metaIDs[i] = opts.Meta.RecordTask(taskKindOf(p, batch[i]), pred, l, r, rep.Metrics.Rounds)
		}
	}
	answerTask := func(i int, w *crowd.Worker) {
		choice := 0
		if w.AnswerBool(p.Truth[batch[i]]) {
			choice = 1
		}
		taskList[i].Answers = append(taskList[i].Answers, quality.ChoiceAnswer{Worker: w.ID, Choice: choice})
		answeredBy[i][w.ID] = true
		posteriors[i] = quality.BayesianPosterior(taskList[i], opts.Workers.Quality)
		rep.Assignments++
		budget--
		if opts.Meta != nil {
			opts.Meta.RecordAssignment(metaIDs[i], w.ID, boolAnswer(choice == 1))
		}
	}
	// arrive draws a worker who has not yet judged task i (platforms
	// reject repeat judgements; answering twice would correlate
	// errors). nil when the pool is exhausted for this task.
	arrive := func(i int) *crowd.Worker {
		for try := 0; try < 4*opts.Pool.Size(); try++ {
			w := opts.Pool.Arrive()
			if !answeredBy[i][w.ID] {
				return w
			}
		}
		return nil
	}

	// Phase 1: coverage — up to k answers per task, in round-robin
	// passes, skipping tasks whose posterior is already confident (the
	// saved assignments fund phase 2). This guarantees an uncertain
	// task never receives fewer answers than the majority-voting
	// baseline would give it.
	for pass := 0; pass < k; pass++ {
		for i := range batch {
			if budget == 0 {
				break
			}
			if quality.ConfidentEnough(posteriors[i], opts.Confidence) {
				continue
			}
			if w := arrive(i); w != nil {
				answerTask(i, w)
			}
		}
	}
	// Phase 2: adaptive assignment of the remaining slots to the tasks
	// with the highest expected entropy reduction.
	misses := 0
	for budget > 0 && misses < 2*opts.Pool.Size() {
		w := opts.Pool.Arrive()
		open := func(i int) bool {
			return len(taskList[i].Answers) < maxPerTask &&
				!answeredBy[i][w.ID] &&
				!quality.ConfidentEnough(posteriors[i], opts.Confidence)
		}
		pick := quality.AssignChoice(posteriors, open, opts.Workers.Quality(w.ID), 1)
		if len(pick) == 0 {
			// This worker has judged every open task (or everything is
			// confident): wait for a different arrival before giving up.
			misses++
			continue
		}
		misses = 0
		answerTask(pick[0], w)
	}

	// Truth inference: EM over the full query history refines worker
	// qualities; this round's verdicts come from the refreshed
	// posteriors of its own tasks.
	base := len(rep.emHistory)
	rep.emHistory = append(rep.emHistory, taskList...)
	inferSpan := opts.Trace.Begin(obs.SpanInfer)
	post := opts.Workers.InferEM(rep.emHistory, 50)
	opts.Trace.Mutate(inferSpan, func(s *obs.Span) { s.Tasks = len(rep.emHistory) })
	opts.Trace.End(inferSpan)
	verdicts := make(map[int]bool, len(batch))
	for i, e := range batch {
		verdicts[e] = quality.EstimateTruth(post[base+i]) == 1
		pp := post[base+i]
		conf := pp[0]
		if pp[1] > conf {
			conf = pp[1]
		}
		rep.setEdgeConf(e, conf)
		if opts.Meta != nil {
			_ = opts.Meta.RecordVerdict(metaIDs[i], verdicts[e])
			for _, a := range taskList[i].Answers {
				opts.Meta.UpdateWorkerQuality(a.Worker, opts.Workers.Quality(a.Worker))
			}
		}
	}
	return verdicts
}
