package exec

import (
	"context"
	"reflect"
	"testing"

	"cdb/internal/cost"
	"cdb/internal/crowd"
	"cdb/internal/dataset"
	"cdb/internal/stats"
)

// pureResolver answers every task as a pure function of (seed, task
// key, redundancy) — the same deterministic scheme the engine's
// coalescer uses. Component-sharded execution is only sound on this
// path: a stateful arrival RNG would leak scheduling into verdicts.
type pureResolver struct {
	seed uint64
	pool *crowd.Pool
}

func (r pureResolver) Resolve(_ context.Context, reqs []TaskRequest) (map[int]TaskVerdict, error) {
	out := make(map[int]TaskVerdict, len(reqs))
	for _, req := range reqs {
		workers := r.pool.Workers()
		k := req.K
		if k > len(workers) {
			k = len(workers)
		}
		rng := stats.HashRNG(r.seed, stats.HashString(req.Key), uint64(req.K))
		idx := make([]int, len(workers))
		for i := range idx {
			idx[i] = i
		}
		yes := 0
		for i := 0; i < k; i++ {
			j := i + rng.Intn(len(idx)-i)
			idx[i], idx[j] = idx[j], idx[i]
			w := workers[idx[i]]
			ans := req.Truth
			if rng.Float64() >= w.LatentAccuracy() {
				ans = !ans
			}
			if ans {
				yes++
			}
		}
		value := 2*yes > k
		conf := float64(yes) / float64(k)
		if !value {
			conf = 1 - conf
		}
		out[req.Edge] = TaskVerdict{Value: value, Confidence: conf, Assignments: k}
	}
	return out, nil
}

type shardRun struct {
	plan    *Plan
	scope   *ShardScope
	rep     *Report
	updates []RoundUpdate
}

func runScoped(t *testing.T, d *dataset.Data, query string, res TaskResolver, owned func(string) bool) *shardRun {
	t.Helper()
	p, err := BuildPlan(mustSelect(t, query), d.Catalog, d.Oracle, DefaultPlanConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sc *ShardScope
	if owned != nil {
		sc = RestrictToOwned(p, owned)
	}
	run := &shardRun{plan: p, scope: sc}
	rep, err := Run(context.Background(), p, Options{
		Strategy:   &cost.Expectation{},
		Redundancy: 5,
		Pool:       crowd.NewPool(30, 0.9, 0.05, stats.NewRNG(11)),
		Resolver:   res,
		Progress:   func(u RoundUpdate) { run.updates = append(run.updates, u) },
	})
	if err != nil {
		t.Fatal(err)
	}
	run.rep = rep
	return run
}

// TestShardedUnionBitIdentical is the load-bearing property of the
// cluster layer: executing each component partition on its own fresh
// plan and merging — rows ordered by merge key, per-round updates and
// raw truth counts summed, rounds maxed — must reproduce the
// single-graph execution bit for bit. Verified over the paper
// dataset's query shapes and 2- and 3-way partitions.
func TestShardedUnionBitIdentical(t *testing.T) {
	d := dataset.GenPaper(dataset.Config{Seed: 7, Scale: 0.1})
	res := pureResolver{seed: 99, pool: crowd.NewPool(30, 0.9, 0.05, stats.NewRNG(11))}
	for label, query := range dataset.Queries("paper") {
		for _, shards := range []int{2, 3} {
			whole := runScoped(t, d, query, res, nil)

			keys := ComponentKeys(whole.plan)
			if len(keys) < 2 {
				t.Fatalf("%s: only %d components; partition test is vacuous", label, len(keys))
			}
			keyShard := map[string]int{}
			for i, k := range keys {
				keyShard[k] = i % shards
			}

			var runs []*shardRun
			for s := 0; s < shards; s++ {
				s := s
				runs = append(runs, runScoped(t, d, query, res, func(k string) bool { return keyShard[k] == s }))
			}

			checkMergedAnswers(t, label, whole, runs)
			checkMergedStats(t, label, whole, runs)
			checkMergedUpdates(t, label, whole.updates, runs)
		}
	}
}

// checkMergedAnswers merges the per-shard answers by merge-key order
// and compares rows, assignments and confidences positionally against
// the whole run.
func checkMergedAnswers(t *testing.T, label string, whole *shardRun, runs []*shardRun) {
	t.Helper()
	type row struct {
		key    []int
		assign []int
		conf   float64
	}
	var merged []row
	for _, r := range runs {
		keys := MergeKeys(r.plan, r.rep.Answers)
		for i, a := range r.rep.Answers {
			conf := 1.0
			if r.rep.Confidence != nil {
				conf = r.rep.Confidence[i]
			}
			merged = append(merged, row{key: keys[i], assign: a.Assign, conf: conf})
		}
	}
	// Insertion sort by merge key: small n, and it keeps the comparison
	// logic in one obvious place.
	less := func(a, b []int) bool {
		for i := range a {
			if a[i] != b[i] {
				return a[i] < b[i]
			}
		}
		return false
	}
	for i := 1; i < len(merged); i++ {
		for j := i; j > 0 && less(merged[j].key, merged[j-1].key); j-- {
			merged[j], merged[j-1] = merged[j-1], merged[j]
		}
	}

	if len(merged) != len(whole.rep.Answers) {
		t.Fatalf("%s: merged %d answers, whole run %d", label, len(merged), len(whole.rep.Answers))
	}
	for i, a := range whole.rep.Answers {
		if !reflect.DeepEqual(merged[i].assign, a.Assign) {
			t.Fatalf("%s: row %d assign = %v, whole %v", label, i, merged[i].assign, a.Assign)
		}
		want := 1.0
		if whole.rep.Confidence != nil {
			want = whole.rep.Confidence[i]
		}
		if merged[i].conf != want {
			t.Fatalf("%s: row %d confidence = %v, whole %v", label, i, merged[i].conf, want)
		}
	}
}

// checkMergedStats verifies the scalar merge rules: tasks/assignments
// and truth counts sum, rounds max.
func checkMergedStats(t *testing.T, label string, whole *shardRun, runs []*shardRun) {
	t.Helper()
	tasks, asks, rounds := 0, 0, 0
	truthTotal, truthCorrect := 0, 0
	for _, r := range runs {
		tasks += r.rep.Metrics.Tasks
		asks += r.rep.Assignments
		if r.rep.Metrics.Rounds > rounds {
			rounds = r.rep.Metrics.Rounds
		}
		tt, tc := r.scope.TruthCounts(r.plan)
		truthTotal += tt
		truthCorrect += tc
	}
	if tasks != whole.rep.Metrics.Tasks || asks != whole.rep.Assignments {
		t.Fatalf("%s: merged tasks/assignments = %d/%d, whole %d/%d",
			label, tasks, asks, whole.rep.Metrics.Tasks, whole.rep.Assignments)
	}
	if rounds != whole.rep.Metrics.Rounds {
		t.Fatalf("%s: merged rounds = %d, whole %d", label, rounds, whole.rep.Metrics.Rounds)
	}
	wholeTruth := whole.plan.TrueAnswerKeys()
	wholeCorrect := 0
	for k := range whole.plan.AnswerKeys() {
		if wholeTruth[k] {
			wholeCorrect++
		}
	}
	if truthTotal != len(wholeTruth) || truthCorrect != wholeCorrect {
		t.Fatalf("%s: merged truth %d/%d, whole %d/%d",
			label, truthCorrect, truthTotal, wholeCorrect, len(wholeTruth))
	}
}

// checkMergedUpdates verifies wave alignment: summing the shards'
// round-r updates (finished shards contributing their final cumulative
// state) reproduces the single-graph per-round stream exactly. This is
// what lets a coordinator stream merged round events bit-identical to
// one node's.
func checkMergedUpdates(t *testing.T, label string, whole []RoundUpdate, runs []*shardRun) {
	t.Helper()
	rounds := 0
	for _, r := range runs {
		if len(r.updates) > rounds {
			rounds = len(r.updates)
		}
	}
	if rounds != len(whole) {
		t.Fatalf("%s: merged %d round updates, whole %d", label, rounds, len(whole))
	}
	for ri := 0; ri < rounds; ri++ {
		var m RoundUpdate
		m.Round = ri + 1
		for _, r := range runs {
			if ri < len(r.updates) {
				u := r.updates[ri]
				m.Tasks += u.Tasks
				m.Assignments += u.Assignments
				m.Blue += u.Blue
				m.Red += u.Red
				m.Inferred += u.Inferred
				m.Open += u.Open
			} else if len(r.updates) > 0 {
				// A shard that finished earlier holds its final state.
				m.Open += r.updates[len(r.updates)-1].Open
			}
			if ri < len(r.updates) {
				m.TasksTotal += r.updates[ri].TasksTotal
				m.AssignmentsTotal += r.updates[ri].AssignmentsTotal
			} else if len(r.updates) > 0 {
				m.TasksTotal += r.updates[len(r.updates)-1].TasksTotal
				m.AssignmentsTotal += r.updates[len(r.updates)-1].AssignmentsTotal
			}
		}
		if m != whole[ri] {
			t.Fatalf("%s: merged round %d update = %+v, whole %+v", label, ri+1, m, whole[ri])
		}
	}
}
