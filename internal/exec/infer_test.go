package exec

import (
	"context"
	"testing"

	"cdb/internal/cost"
	"cdb/internal/dataset"
)

// paperPlan builds a plan over the paper benchmark's 2-join query at a
// small scale — dirty enough that value clusters exist and transitive
// inference has something to deduce.
func paperPlan(t *testing.T, seed uint64) (*Plan, *dataset.Data) {
	t.Helper()
	d := dataset.GenPaper(dataset.Config{Seed: seed, Scale: 0.15})
	p, err := BuildPlan(mustSelect(t, dataset.Queries("paper")["2J"]), d.Catalog, d.Oracle, DefaultPlanConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p, d
}

// TestTransitiveInfersForFree: with perfect workers, transitive mode
// must find the same answers as the baseline while labeling some edges
// by inference — and every inferred label must be correct, since the
// evidence it chains is correct.
func TestTransitiveInfersForFree(t *testing.T) {
	run := func(transitive bool) *Report {
		p, _ := paperPlan(t, 11)
		rep, err := Run(context.Background(), p, Options{
			Strategy:   &cost.Expectation{},
			Redundancy: 3,
			Pool:       perfectPool(1, 40),
			Transitive: transitive,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	base := run(false)
	trans := run(true)

	if trans.Inferred == 0 {
		t.Fatal("transitive mode inferred nothing on the dirty paper dataset")
	}
	if trans.Metrics.Precision != base.Metrics.Precision || trans.Metrics.Recall != base.Metrics.Recall {
		t.Fatalf("quality moved: base P/R %v/%v, transitive %v/%v",
			base.Metrics.Precision, base.Metrics.Recall, trans.Metrics.Precision, trans.Metrics.Recall)
	}
	if len(trans.Answers) != len(base.Answers) {
		t.Fatalf("answers: base %d, transitive %d", len(base.Answers), len(trans.Answers))
	}
	if trans.Metrics.Tasks >= base.Metrics.Tasks {
		t.Fatalf("transitive mode asked %d tasks, baseline %d — inference saved nothing",
			trans.Metrics.Tasks, base.Metrics.Tasks)
	}
	if base.Inferred != 0 || base.Provenance != nil {
		t.Fatalf("baseline run leaked inference state: %d inferred, provenance %v",
			base.Inferred, base.Provenance)
	}
}

// TestTransitiveProvenance: Provenance is aligned with Answers, each
// entry accounts for every supporting edge, and the totals agree with
// Report.Inferred-labeled edges actually used by answers.
func TestTransitiveProvenance(t *testing.T) {
	p, _ := paperPlan(t, 3)
	rep, err := Run(context.Background(), p, Options{
		Strategy:   &cost.Expectation{},
		Redundancy: 3,
		Pool:       perfectPool(1, 40),
		Transitive: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Provenance) != len(rep.Answers) {
		t.Fatalf("provenance entries %d, answers %d", len(rep.Provenance), len(rep.Answers))
	}
	sawInferred := false
	for i, a := range rep.Answers {
		pv := rep.Provenance[i]
		if pv.Crowd+pv.Inferred+pv.Prior != len(a.Edges) {
			t.Fatalf("answer %d: provenance %+v does not cover %d edges", i, pv, len(a.Edges))
		}
		if pv.Inferred > 0 {
			sawInferred = true
		}
	}
	if rep.Inferred > 0 && len(rep.Answers) > 0 && !sawInferred {
		// Inference may land on Red (pruned) edges only, but on this
		// dirty dataset some Blue entailments should support answers.
		t.Log("no answer was backed by an inferred edge (all inference went to pruning)")
	}
	// Confidence stays aligned and in range with inferred edges mixed in.
	if len(rep.Confidence) != len(rep.Answers) {
		t.Fatalf("confidence entries %d, answers %d", len(rep.Confidence), len(rep.Answers))
	}
	for i, c := range rep.Confidence {
		if c <= 0 || c > 1 {
			t.Fatalf("answer %d confidence %v out of (0, 1]", i, c)
		}
	}
}

// TestTransitiveRoundUpdates: Progress snapshots carry the per-round
// inferred count and sum to the report total.
func TestTransitiveRoundUpdates(t *testing.T) {
	p, _ := paperPlan(t, 11)
	total := 0
	rep, err := Run(context.Background(), p, Options{
		Strategy:   &cost.Expectation{},
		Redundancy: 3,
		Pool:       perfectPool(1, 40),
		Transitive: true,
		Progress:   func(u RoundUpdate) { total += u.Inferred },
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != rep.Inferred {
		t.Fatalf("round updates sum %d inferred, report says %d", total, rep.Inferred)
	}
}
