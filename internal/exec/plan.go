// Package exec ties CDB together: it binds a parsed CQL query against
// the catalog, instantiates the tuple-level query graph (§4) via
// similarity joins, and runs Algorithm 1 (Appendix B): repeatedly
// select tasks (cost control), batch the non-conflicting ones (latency
// control), crowdsource them with redundancy and aggregate answers
// (quality control), color the graph, and finally collect the answers.
package exec

import (
	"fmt"
	"strings"

	"cdb/internal/cql"
	"cdb/internal/graph"
	"cdb/internal/sim"
	"cdb/internal/table"
)

// Oracle supplies the simulation ground truth: whether two cell values
// truly denote the same entity. Real deployments have no oracle — it
// exists to drive simulated workers and to score results, mirroring
// the paper's labelled datasets.
type Oracle interface {
	// JoinMatch reports whether leftVal (from leftTable.leftCol) and
	// rightVal (from rightTable.rightCol) truly join.
	JoinMatch(leftTable, leftCol, rightTable, rightCol, leftVal, rightVal string) bool
	// SelMatch reports whether val (from table.col) truly satisfies the
	// CROWDEQUAL constant.
	SelMatch(tbl, col, val, constant string) bool
}

// ExactOracle is the trivial oracle for clean data: values match iff
// equal after case folding. Useful in tests and the quickstart.
type ExactOracle struct{}

// JoinMatch implements Oracle.
func (ExactOracle) JoinMatch(_, _, _, _, l, r string) bool {
	return strings.EqualFold(strings.TrimSpace(l), strings.TrimSpace(r))
}

// SelMatch implements Oracle.
func (ExactOracle) SelMatch(_, _, v, c string) bool {
	return strings.EqualFold(strings.TrimSpace(v), strings.TrimSpace(c))
}

// PredBinding records how a structure predicate maps back to the CQL
// query: the column index on each side (-1 for the selection constant
// side).
type PredBinding struct {
	Pred     cql.Predicate
	LeftTab  int // structure table index
	RightTab int
	LeftCol  int
	RightCol int // -1 for selections
}

// Plan is a bound, instantiated query ready for execution.
type Plan struct {
	Stmt     *cql.Select
	S        *graph.Structure
	G        *graph.Graph
	Truth    []bool // ground truth per edge (true = should be Blue)
	Bindings []PredBinding
	// TableIdx maps FROM table names (lower-cased) to structure index.
	TableIdx map[string]int
	// Tables holds the bound *table.Table per structure index (nil for
	// selection pseudo-tables).
	Tables []*table.Table
	// Orc and Cfg are retained for derived helpers (e.g. the ER
	// baselines' side-dedup oracle).
	Orc Oracle
	Cfg PlanConfig
}

// PlanConfig controls graph instantiation.
type PlanConfig struct {
	// Sim is the similarity function used as matching probability
	// (§4.1); the paper's default is 2-gram Jaccard.
	Sim sim.Func
	// Epsilon prunes edges with similarity below it (default 0.3).
	Epsilon float64
	// Selectivity optionally carries observed per-predicate match
	// rates from earlier queries (the §2.1 statistics store, e.g.
	// meta.Stats.Selectivity). When a predicate's label is present,
	// its edge weights are rescaled so their mean equals the observed
	// rate — similarity still ranks pairs, history calibrates the
	// level.
	Selectivity map[string]float64
	// Joiner, when set, replaces sim.Join for CROWDJOIN graph
	// instantiation — the engine plugs in its shared similarity-join
	// cache here so concurrent queries over the same table pair
	// tokenize and index once. The returned slice may be shared and
	// must not be mutated; nil falls back to sim.Join.
	Joiner func(f sim.Func, left, right []string, eps float64) []sim.Pair
}

// DefaultPlanConfig mirrors the paper's settings.
func DefaultPlanConfig() PlanConfig {
	return PlanConfig{Sim: sim.Gram2Jaccard, Epsilon: 0.3}
}

// BuildPlan binds stmt against the catalog and instantiates the query
// graph. The oracle labels every edge with its true color for the
// crowd simulator.
func BuildPlan(stmt *cql.Select, cat *table.Catalog, orc Oracle, cfg PlanConfig) (*Plan, error) {
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = 0.3
	}
	p := &Plan{Stmt: stmt, TableIdx: map[string]int{}, Orc: orc, Cfg: cfg}
	s := &graph.Structure{}
	for _, name := range stmt.From {
		key := strings.ToLower(name)
		if _, dup := p.TableIdx[key]; dup {
			return nil, fmt.Errorf("exec: table %s listed twice in FROM (self-joins need distinct aliases)", name)
		}
		tb, ok := cat.Get(name)
		if !ok {
			return nil, fmt.Errorf("exec: %w %s", table.ErrUnknownTable, name)
		}
		p.TableIdx[key] = len(s.Tables)
		s.Tables = append(s.Tables, tb.Schema.Name)
		p.Tables = append(p.Tables, tb)
	}

	type edgeSpec struct {
		pred  int
		a, b  int
		w     float64
		truth bool
		color graph.Color
	}
	var specs []edgeSpec
	counts := make([]int, len(s.Tables))
	for i, tb := range p.Tables {
		counts[i] = tb.Len()
	}

	resolve := func(ref cql.ColRef) (tabIdx, colIdx int, err error) {
		if ref.Table == "" {
			return 0, 0, fmt.Errorf("exec: column %s must be table-qualified", ref.Column)
		}
		ti, ok := p.TableIdx[strings.ToLower(ref.Table)]
		if !ok {
			return 0, 0, fmt.Errorf("exec: predicate references %s, which is not in FROM", ref.Table)
		}
		ci := p.Tables[ti].Schema.ColIndex(ref.Column)
		if ci < 0 {
			return 0, 0, fmt.Errorf("exec: table %s has no column %s", ref.Table, ref.Column)
		}
		return ti, ci, nil
	}

	colStrings := func(ti, ci int) []string {
		tb := p.Tables[ti]
		out := make([]string, tb.Len())
		for r := 0; r < tb.Len(); r++ {
			v := tb.Cell(r, ci)
			if v.Null {
				out[r] = ""
			} else {
				out[r] = v.String()
			}
		}
		return out
	}

	for _, pred := range stmt.Where {
		switch pred.Kind {
		case cql.CrowdJoin, cql.EquiJoin:
			lt, lc, err := resolve(pred.Left)
			if err != nil {
				return nil, err
			}
			rt, rc, err := resolve(pred.Right)
			if err != nil {
				return nil, err
			}
			if lt == rt {
				return nil, fmt.Errorf("exec: join predicate within one table instance: %s", pred)
			}
			predIdx := len(s.Preds)
			s.Preds = append(s.Preds, graph.QPred{A: lt, B: rt, Name: pred.String()})
			p.Bindings = append(p.Bindings, PredBinding{Pred: pred, LeftTab: lt, RightTab: rt, LeftCol: lc, RightCol: rc})
			lvals, rvals := colStrings(lt, lc), colStrings(rt, rc)
			if pred.Kind == cql.CrowdJoin {
				join := sim.Join
				if cfg.Joiner != nil {
					join = cfg.Joiner
				}
				for _, pr := range join(cfg.Sim, lvals, rvals, cfg.Epsilon) {
					if lvals[pr.Left] == "" || rvals[pr.Right] == "" {
						continue // CNULL cells cannot join
					}
					truth := orc.JoinMatch(s.Tables[lt], pred.Left.Column, s.Tables[rt], pred.Right.Column,
						lvals[pr.Left], rvals[pr.Right])
					specs = append(specs, edgeSpec{pred: predIdx, a: pr.Left, b: pr.Right, w: pr.Sim, truth: truth})
				}
			} else {
				for i, lv := range lvals {
					for j, rv := range rvals {
						if lv != "" && lv == rv {
							specs = append(specs, edgeSpec{pred: predIdx, a: i, b: j, w: 1, truth: true, color: graph.Blue})
						}
					}
				}
			}
		case cql.CrowdEqual, cql.Equal:
			lt, lc, err := resolve(pred.Left)
			if err != nil {
				return nil, err
			}
			// One pseudo-table holding just the constant (§4.2).
			constIdx := len(s.Tables)
			s.Tables = append(s.Tables, fmt.Sprintf("$const:%s", pred.Value))
			p.Tables = append(p.Tables, nil)
			counts = append(counts, 1)
			predIdx := len(s.Preds)
			s.Preds = append(s.Preds, graph.QPred{A: lt, B: constIdx, Name: pred.String()})
			p.Bindings = append(p.Bindings, PredBinding{Pred: pred, LeftTab: lt, RightTab: constIdx, LeftCol: lc, RightCol: -1})
			vals := colStrings(lt, lc)
			for i, v := range vals {
				if v == "" {
					continue
				}
				if pred.Kind == cql.CrowdEqual {
					w := sim.Similarity(cfg.Sim, v, pred.Value)
					if w < cfg.Epsilon {
						continue
					}
					truth := orc.SelMatch(s.Tables[lt], pred.Left.Column, v, pred.Value)
					specs = append(specs, edgeSpec{pred: predIdx, a: i, b: 0, w: w, truth: truth})
				} else if v == pred.Value {
					specs = append(specs, edgeSpec{pred: predIdx, a: i, b: 0, w: 1, truth: true, color: graph.Blue})
				}
			}
		}
	}

	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("exec: %w", err)
	}
	g, err := graph.NewGraph(s, counts)
	if err != nil {
		return nil, fmt.Errorf("exec: %w", err)
	}
	for _, sp := range specs {
		id := g.AddEdge(sp.pred, sp.a, sp.b, sp.w)
		p.Truth = append(p.Truth, sp.truth)
		if sp.color != graph.Unknown {
			g.SetColor(id, sp.color)
		}
	}
	p.S = s
	p.G = g
	if len(cfg.Selectivity) > 0 {
		p.applySelectivity(cfg.Selectivity)
	}
	return p, nil
}

// applySelectivity rescales each hinted predicate's uncolored edge
// weights so their mean matches the observed match rate, clamped to
// (0, 1).
func (p *Plan) applySelectivity(hints map[string]float64) {
	for pred := range p.S.Preds {
		hint, ok := hints[p.S.Preds[pred].Name]
		if !ok || hint <= 0 {
			continue
		}
		var sum float64
		var n int
		for e := 0; e < p.G.NumEdges(); e++ {
			ed := p.G.Edge(e)
			if ed.Pred == pred && ed.Color == graph.Unknown {
				sum += ed.W
				n++
			}
		}
		if n == 0 || sum == 0 {
			continue
		}
		scale := hint / (sum / float64(n))
		for e := 0; e < p.G.NumEdges(); e++ {
			ed := p.G.Edge(e)
			if ed.Pred != pred || ed.Color != graph.Unknown {
				continue
			}
			w := ed.W * scale
			if w < 0.01 {
				w = 0.01
			}
			if w > 0.99 {
				w = 0.99
			}
			p.G.SetWeight(e, w)
		}
	}
}

// TrueAnswerKeys enumerates the ground-truth answers: embeddings whose
// every edge is truth-true, keyed by their assignment for
// precision/recall scoring.
func (p *Plan) TrueAnswerKeys() map[string]bool {
	out := map[string]bool{}
	p.G.EnumerateEmbeddings(nil, func(e graph.Edge) bool { return p.Truth[e.ID] },
		func(assign, _ []int) bool {
			out[assignKey(assign)] = true
			return true
		})
	return out
}

// AnswerKeys keys the currently derived answers (all-blue embeddings).
func (p *Plan) AnswerKeys() map[string]bool {
	out := map[string]bool{}
	for _, a := range p.G.Answers() {
		out[assignKey(a.Assign)] = true
	}
	return out
}

func assignKey(assign []int) string {
	var b strings.Builder
	for i, v := range assign {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}

// ProjectAnswer materializes one answer embedding into the statement's
// requested columns (all columns of real tables for SELECT *).
func (p *Plan) ProjectAnswer(a graph.Embedding) ([]string, error) {
	var out []string
	if p.Stmt.Star {
		for ti, tb := range p.Tables {
			if tb == nil {
				continue
			}
			row := p.G.RowOf(a.Assign[ti])
			for ci := range tb.Schema.Columns {
				out = append(out, tb.Cell(row, ci).String())
			}
		}
		return out, nil
	}
	for _, ref := range p.Stmt.Cols {
		ti, ok := p.TableIdx[strings.ToLower(ref.Table)]
		if !ok {
			return nil, fmt.Errorf("exec: projection references unknown table %s", ref.Table)
		}
		tb := p.Tables[ti]
		ci := tb.Schema.ColIndex(ref.Column)
		if ci < 0 {
			return nil, fmt.Errorf("exec: projection references unknown column %s", ref)
		}
		out = append(out, tb.Cell(p.G.RowOf(a.Assign[ti]), ci).String())
	}
	return out, nil
}

// ProjectionColumns names the statement's projected columns (all
// columns of real tables for SELECT *), aligned with ProjectAnswer.
func (p *Plan) ProjectionColumns() []string {
	var out []string
	if p.Stmt.Star {
		for ti, tb := range p.Tables {
			if tb == nil {
				continue
			}
			for _, c := range tb.Schema.Columns {
				out = append(out, p.S.Tables[ti]+"."+c.Name)
			}
		}
		return out
	}
	for _, ref := range p.Stmt.Cols {
		out = append(out, ref.String())
	}
	return out
}

// TaskDescription renders a crowd task's human-facing content: the
// predicate label and the two cell values being compared. Used by the
// metadata store and the shell's trace mode.
func (p *Plan) TaskDescription(edgeID int) (predicate, left, right string) {
	e := p.G.Edge(edgeID)
	b := p.Bindings[e.Pred]
	predicate = p.S.Preds[e.Pred].Name
	leftTb := p.Tables[b.LeftTab]
	left = leftTb.Cell(p.G.RowOf(e.U), b.LeftCol).String()
	if b.RightCol < 0 {
		right = b.Pred.Value // selection constant
		return
	}
	rightTb := p.Tables[b.RightTab]
	right = rightTb.Cell(p.G.RowOf(e.V), b.RightCol).String()
	return
}
