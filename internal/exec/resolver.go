package exec

import (
	"context"
	"fmt"
	"strings"

	"cdb/internal/obs"
)

// Resolver metrics: tasks routed through a shared serving layer and how
// many of them were answered without fresh crowd work.
var (
	mResolved    = obs.Default.Counter("cdb_exec_resolver_tasks_total")
	mResCoalesce = obs.Default.Counter("cdb_exec_resolver_coalesced_total")
	mResCached   = obs.Default.Counter("cdb_exec_resolver_cached_total")
	mResLedger   = obs.Default.Counter("cdb_exec_resolver_ledger_total")
)

// TaskRequest is one crowd task handed to a TaskResolver: the edge it
// colors in this query's graph plus the content-canonical identity that
// lets a serving layer recognize the same question asked by another
// query.
type TaskRequest struct {
	// Edge is the graph edge id within the submitting query.
	Edge int
	// Key canonically identifies the task by content (see Plan.TaskKey):
	// two queries asking the crowd to compare the same pair of cell
	// values under the same predicate produce equal keys.
	Key string
	// Truth drives simulated workers, exactly as on the other paths.
	Truth bool
	// Prior is the optimizer's matching probability for the edge.
	Prior float64
	// K is the redundancy (worker answers requested).
	K int
}

// TaskVerdict is a resolver's ruling on one task.
type TaskVerdict struct {
	// Value is the inferred verdict (true = the pair matches).
	Value bool
	// Confidence is the aggregation confidence in Value.
	Confidence float64
	// Assignments is the number of worker answers backing the verdict,
	// charged to the submitting query regardless of sharing — per-query
	// Stats stay identical whether or not another query already paid
	// for the HIT; the engine's own counters report the actual savings.
	Assignments int
	// Coalesced marks a task that attached to another query's in-flight
	// HIT; Cached marks one served from the shared verdict cache.
	Coalesced bool
	Cached    bool
	// Inferred marks a cached verdict that another query derived by
	// transitive inference instead of crowd work.
	Inferred bool
	// Ledger marks a verdict replayed from the durable crowd-work
	// ledger: paid for before the last restart, charged nothing now.
	// Deliberately not folded into Cached — wire-visible Stats must
	// stay identical between a warm resume and an uninterrupted run,
	// so ledger provenance travels on the engine's introspection and
	// counters instead.
	Ledger bool
	// Remote marks a verdict imported from another shard's cache by
	// cluster replication. A hit on it reports as an ordinary cache
	// hit (in the single-node equivalent an earlier query resolved the
	// task into the shared cache); the flag feeds the engine's
	// cross-shard savings counters only.
	Remote bool
}

// TaskResolver intercepts a round's crowdsourcing. The engine's HIT
// coalescer implements it to dispatch identical tasks from concurrent
// queries once and fan the verdict out to every subscriber.
// Implementations must be safe for concurrent use by many queries and
// must return a verdict for every requested edge (or an error).
type TaskResolver interface {
	Resolve(ctx context.Context, reqs []TaskRequest) (map[int]TaskVerdict, error)
}

// TaskKey renders the canonical content key of a crowd task: task kind,
// predicate label, and the two cell values, with the sides ordered
// lexicographically (a "do these match?" HIT is symmetric, so queries
// phrasing the join in either direction coalesce). Selection tasks pin
// the constant on the right.
func (p *Plan) TaskKey(edgeID int) string {
	pred, left, right := p.TaskDescription(edgeID)
	kind := "join"
	if p.Bindings[p.G.Edge(edgeID).Pred].RightCol < 0 {
		kind = "sel"
	} else if right < left {
		left, right = right, left
	}
	var b strings.Builder
	b.Grow(len(kind) + len(pred) + len(left) + len(right) + 3)
	b.WriteString(kind)
	b.WriteByte('\x1f')
	b.WriteString(pred)
	b.WriteByte('\x1f')
	b.WriteString(left)
	b.WriteByte('\x1f')
	b.WriteString(right)
	return b.String()
}

// crowdsourceResolver runs one round through a shared TaskResolver: the
// serving layer owns answer collection and aggregation; the executor
// records verdicts, confidences and sharing telemetry. Metadata gets
// the task and verdict rows (individual assignments belong to the
// owning query's resolver and are not re-attributed to subscribers).
func (rep *Report) crowdsourceResolver(ctx context.Context, p *Plan, batch []int, opts Options) (map[int]bool, error) {
	reqs := make([]TaskRequest, len(batch))
	for i, e := range batch {
		reqs[i] = TaskRequest{
			Edge:  e,
			Key:   p.TaskKey(e),
			Truth: p.Truth[e],
			Prior: p.G.Edge(e).W,
			K:     opts.Redundancy,
		}
	}
	rulings, err := opts.Resolver.Resolve(ctx, reqs)
	if err != nil {
		return nil, err
	}
	verdicts := make(map[int]bool, len(batch))
	for _, e := range batch {
		v, ok := rulings[e]
		if !ok {
			return nil, fmt.Errorf("exec: resolver returned no verdict for edge %d", e)
		}
		verdicts[e] = v.Value
		rep.Assignments += v.Assignments
		rep.setEdgeConf(e, v.Confidence)
		mResolved.Inc()
		if v.Coalesced {
			rep.Coalesced++
			mResCoalesce.Inc()
		}
		if v.Cached {
			rep.CachedTasks++
			mResCached.Inc()
		}
		if v.Ledger {
			rep.LedgerTasks++
			mResLedger.Inc()
		}
		if opts.Meta != nil {
			pred, l, r := p.TaskDescription(e)
			id := opts.Meta.RecordTask(taskKindOf(p, e), pred, l, r, rep.Metrics.Rounds)
			_ = opts.Meta.RecordVerdict(id, v.Value)
		}
	}
	return verdicts, nil
}
