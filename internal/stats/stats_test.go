package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiverge(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical values", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children produced identical first values")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(9)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		counts[r.Intn(7)]++
	}
	for v, c := range counts {
		if c < 8500 || c > 11500 {
			t.Fatalf("Intn(7) value %d appeared %d times out of 70000 (expected ~10000)", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm(0.8, 0.1)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-0.8) > 0.005 {
		t.Fatalf("mean = %v, want ~0.8", mean)
	}
	if math.Abs(std-0.1) > 0.005 {
		t.Fatalf("stddev = %v, want ~0.1", std)
	}
}

func TestNormClamped(t *testing.T) {
	r := NewRNG(13)
	for i := 0; i < 10000; i++ {
		v := r.NormClamped(0.5, 10, 0, 1)
		if v < 0 || v > 1 {
			t.Fatalf("NormClamped escaped bounds: %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(17)
	err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPick(t *testing.T) {
	r := NewRNG(19)
	xs := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[Pick(r, xs)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Pick never returned some element: %v", seen)
	}
}

func TestF1(t *testing.T) {
	cases := []struct {
		p, r, want float64
	}{
		{1, 1, 1},
		{0, 0, 0},
		{1, 0, 0},
		{0.5, 0.5, 0.5},
		{0.8, 0.4, 2 * 0.8 * 0.4 / 1.2},
	}
	for _, c := range cases {
		if got := F1(c.p, c.r); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("F1(%v,%v) = %v, want %v", c.p, c.r, got, c.want)
		}
	}
}

func TestPrecisionRecall(t *testing.T) {
	truth := map[string]bool{"a": true, "b": true, "c": true, "d": true}
	returned := map[string]bool{"a": true, "b": true, "x": true}
	p, r := PrecisionRecall(returned, truth)
	if math.Abs(p-2.0/3.0) > 1e-12 {
		t.Fatalf("precision = %v, want 2/3", p)
	}
	if math.Abs(r-0.5) > 1e-12 {
		t.Fatalf("recall = %v, want 0.5", r)
	}
}

func TestPrecisionRecallEmpty(t *testing.T) {
	p, r := PrecisionRecall(map[int]bool{}, map[int]bool{})
	if p != 1 || r != 1 {
		t.Fatalf("empty/empty should be perfect, got %v/%v", p, r)
	}
	p, r = PrecisionRecall(map[int]bool{}, map[int]bool{1: true})
	if p != 0 || r != 0 {
		t.Fatalf("empty returned with nonempty truth should be 0/0, got %v/%v", p, r)
	}
	p, r = PrecisionRecall(map[int]bool{1: true}, map[int]bool{})
	if p != 0 || r != 1 {
		t.Fatalf("nonempty returned with empty truth: got %v/%v, want 0/1", p, r)
	}
}

func TestAgg(t *testing.T) {
	var a Agg
	a.Add(Metrics{Tasks: 10, Rounds: 3, Precision: 1, Recall: 0.5})
	a.Add(Metrics{Tasks: 20, Rounds: 5, Precision: 0.5, Recall: 1})
	tasks, rounds, p, r, f1 := a.Mean()
	if tasks != 15 || rounds != 4 {
		t.Fatalf("tasks/rounds mean = %v/%v", tasks, rounds)
	}
	if math.Abs(p-0.75) > 1e-12 || math.Abs(r-0.75) > 1e-12 {
		t.Fatalf("p/r mean = %v/%v", p, r)
	}
	wantF1 := (F1(1, 0.5) + F1(0.5, 1)) / 2
	if math.Abs(f1-wantF1) > 1e-12 {
		t.Fatalf("f1 mean = %v, want %v", f1, wantF1)
	}
	if a.N() != 2 {
		t.Fatalf("N = %d", a.N())
	}
}

func TestAggWelford(t *testing.T) {
	// Tasks 2,4,4,4,5,5,7,9: mean 5, population variance 4, sample
	// variance 32/7. Welford must match the two-pass result exactly.
	var a Agg
	for _, v := range []int{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(Metrics{Tasks: v})
	}
	tasks, _, _, _, _ := a.Mean()
	if tasks != 5 {
		t.Fatalf("mean = %v, want 5", tasks)
	}
	sd, _, _, _, _ := a.Stddev()
	if want := math.Sqrt(32.0 / 7.0); math.Abs(sd-want) > 1e-12 {
		t.Fatalf("stddev = %v, want %v", sd, want)
	}
	mn, _, _, _, _ := a.Min()
	mx, _, _, _, _ := a.Max()
	if mn != 2 || mx != 9 {
		t.Fatalf("min/max = %v/%v, want 2/9", mn, mx)
	}
	ci, _, _, _, _ := a.CI95()
	if want := 1.96 * sd / math.Sqrt(8); math.Abs(ci-want) > 1e-12 {
		t.Fatalf("ci95 = %v, want %v", ci, want)
	}
}

func TestAggStddevDegenerate(t *testing.T) {
	var a Agg
	sd, _, _, _, _ := a.Stddev()
	if sd != 0 {
		t.Fatalf("empty stddev = %v", sd)
	}
	a.Add(Metrics{Tasks: 3})
	sd, _, _, _, _ = a.Stddev()
	ci, _, _, _, _ := a.CI95()
	if sd != 0 || ci != 0 {
		t.Fatalf("single-sample stddev/ci = %v/%v, want 0/0", sd, ci)
	}
}

func TestAggEmpty(t *testing.T) {
	var a Agg
	tasks, rounds, p, r, f1 := a.Mean()
	if tasks != 0 || rounds != 0 || p != 0 || r != 0 || f1 != 0 {
		t.Fatal("empty Agg should report zeros")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("unexpected summary: %+v", s)
	}
	if math.Abs(s.Stddev-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("stddev = %v", s.Stddev)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatalf("empty summary: %+v", z)
	}
}

func TestEntropy(t *testing.T) {
	if h := Entropy([]float64{1, 0}); h != 0 {
		t.Fatalf("deterministic distribution entropy = %v, want 0", h)
	}
	h := Entropy([]float64{0.5, 0.5})
	if math.Abs(h-math.Ln2) > 1e-12 {
		t.Fatalf("uniform binary entropy = %v, want ln 2", h)
	}
	// Uniform maximizes entropy among 3-outcome distributions.
	if Entropy([]float64{0.8, 0.1, 0.1}) >= Entropy([]float64{1.0 / 3, 1.0 / 3, 1.0 / 3}) {
		t.Fatal("skewed distribution should have lower entropy than uniform")
	}
}
