package stats

import (
	"fmt"
	"math"
	"sort"
)

// Metrics is the triple of crowdsourcing optimization goals the paper
// evaluates for every method: monetary cost (#tasks asked), latency
// (#rounds of crowd interaction), and result quality (F-measure).
type Metrics struct {
	Tasks     int     // number of crowd tasks issued (cost proxy, §6.1)
	Rounds    int     // number of crowd interaction rounds (latency proxy)
	Precision float64 // fraction of returned answers that are correct
	Recall    float64 // fraction of correct answers that were returned
}

// F1 returns the harmonic mean of precision and recall, the paper's
// quality metric. Zero if both are zero.
func (m Metrics) F1() float64 { return F1(m.Precision, m.Recall) }

// F1 computes the F-measure from a precision/recall pair.
func F1(precision, recall float64) float64 {
	if precision+recall == 0 {
		return 0
	}
	return 2 * precision * recall / (precision + recall)
}

// PrecisionRecall compares a returned answer set against the ground
// truth. Both sets are identified by comparable keys.
func PrecisionRecall[K comparable](returned, truth map[K]bool) (precision, recall float64) {
	if len(returned) == 0 {
		if len(truth) == 0 {
			return 1, 1
		}
		return 0, 0
	}
	correct := 0
	for k := range returned {
		if truth[k] {
			correct++
		}
	}
	precision = float64(correct) / float64(len(returned))
	if len(truth) == 0 {
		recall = 1
	} else {
		recall = float64(correct) / float64(len(truth))
	}
	return precision, recall
}

// onlineStat tracks one metric component's running mean, spread and
// range with Welford's online algorithm: numerically stable, O(1)
// memory, no stored samples.
type onlineStat struct {
	mean, m2 float64
	min, max float64
}

func (s *onlineStat) add(x float64, n int) {
	if n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(n)
	s.m2 += d * (x - s.mean)
}

// stddev is the sample standard deviation (n-1 denominator); zero for
// fewer than two observations.
func (s *onlineStat) stddev(n int) float64 {
	if n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(n-1))
}

// Agg accumulates Metrics over experiment repetitions, mirroring the
// paper's "repeat 1K times and report the average" protocol — but it
// keeps the distribution, not just the sum: per-component min/max and
// Welford online variance, so the benchmark harness can attach
// confidence intervals to every reported mean.
type Agg struct {
	n                                    int
	tasks, rounds, precision, recall, f1 onlineStat
}

// Add folds one repetition into the aggregate.
func (a *Agg) Add(m Metrics) {
	a.n++
	a.tasks.add(float64(m.Tasks), a.n)
	a.rounds.add(float64(m.Rounds), a.n)
	a.precision.add(m.Precision, a.n)
	a.recall.add(m.Recall, a.n)
	a.f1.add(m.F1(), a.n)
}

// N reports how many repetitions have been added.
func (a *Agg) N() int { return a.n }

// Mean returns the component-wise means. F-measure is averaged per
// repetition (mean of F1s), not recomputed from mean P/R.
func (a *Agg) Mean() (tasks, rounds, precision, recall, f1 float64) {
	if a.n == 0 {
		return 0, 0, 0, 0, 0
	}
	return a.tasks.mean, a.rounds.mean, a.precision.mean, a.recall.mean, a.f1.mean
}

// Stddev returns the component-wise sample standard deviations (zero
// with fewer than two repetitions).
func (a *Agg) Stddev() (tasks, rounds, precision, recall, f1 float64) {
	return a.tasks.stddev(a.n), a.rounds.stddev(a.n), a.precision.stddev(a.n),
		a.recall.stddev(a.n), a.f1.stddev(a.n)
}

// Min returns the component-wise minima (zeros when empty).
func (a *Agg) Min() (tasks, rounds, precision, recall, f1 float64) {
	return a.tasks.min, a.rounds.min, a.precision.min, a.recall.min, a.f1.min
}

// Max returns the component-wise maxima (zeros when empty).
func (a *Agg) Max() (tasks, rounds, precision, recall, f1 float64) {
	return a.tasks.max, a.rounds.max, a.precision.max, a.recall.max, a.f1.max
}

// CI95 returns the half-width of the 95% confidence interval of each
// mean (1.96·stddev/√n, the normal approximation); zeros with fewer
// than two repetitions.
func (a *Agg) CI95() (tasks, rounds, precision, recall, f1 float64) {
	if a.n < 2 {
		return 0, 0, 0, 0, 0
	}
	h := 1.96 / math.Sqrt(float64(a.n))
	return h * a.tasks.stddev(a.n), h * a.rounds.stddev(a.n), h * a.precision.stddev(a.n),
		h * a.recall.stddev(a.n), h * a.f1.stddev(a.n)
}

// String renders the aggregate in the compact form used by the
// benchmark harness output.
func (a *Agg) String() string {
	t, r, p, rec, f := a.Mean()
	return fmt.Sprintf("tasks=%.1f rounds=%.1f P=%.3f R=%.3f F1=%.3f", t, r, p, rec, f)
}

// Summary describes a distribution of float64 observations.
type Summary struct {
	N            int
	Mean, Stddev float64
	Min, Max     float64
	P50, P95     float64
}

// Summarize computes a Summary of xs. An empty input yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum, sumSq float64
	for _, x := range sorted {
		sum += x
		sumSq += x * x
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:      len(sorted),
		Mean:   mean,
		Stddev: math.Sqrt(variance),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		P50:    quantile(sorted, 0.50),
		P95:    quantile(sorted, 0.95),
	}
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Entropy returns the Shannon entropy (natural log) of a probability
// distribution; terms with p<=0 contribute zero. Used by the
// task-assignment objective (Eq. 3).
func Entropy(p []float64) float64 {
	var h float64
	for _, pi := range p {
		if pi > 0 {
			h -= pi * math.Log(pi)
		}
	}
	return h
}
