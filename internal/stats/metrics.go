package stats

import (
	"fmt"
	"math"
	"sort"
)

// Metrics is the triple of crowdsourcing optimization goals the paper
// evaluates for every method: monetary cost (#tasks asked), latency
// (#rounds of crowd interaction), and result quality (F-measure).
type Metrics struct {
	Tasks     int     // number of crowd tasks issued (cost proxy, §6.1)
	Rounds    int     // number of crowd interaction rounds (latency proxy)
	Precision float64 // fraction of returned answers that are correct
	Recall    float64 // fraction of correct answers that were returned
}

// F1 returns the harmonic mean of precision and recall, the paper's
// quality metric. Zero if both are zero.
func (m Metrics) F1() float64 { return F1(m.Precision, m.Recall) }

// F1 computes the F-measure from a precision/recall pair.
func F1(precision, recall float64) float64 {
	if precision+recall == 0 {
		return 0
	}
	return 2 * precision * recall / (precision + recall)
}

// PrecisionRecall compares a returned answer set against the ground
// truth. Both sets are identified by comparable keys.
func PrecisionRecall[K comparable](returned, truth map[K]bool) (precision, recall float64) {
	if len(returned) == 0 {
		if len(truth) == 0 {
			return 1, 1
		}
		return 0, 0
	}
	correct := 0
	for k := range returned {
		if truth[k] {
			correct++
		}
	}
	precision = float64(correct) / float64(len(returned))
	if len(truth) == 0 {
		recall = 1
	} else {
		recall = float64(correct) / float64(len(truth))
	}
	return precision, recall
}

// Agg accumulates Metrics over experiment repetitions and reports
// their means, mirroring the paper's "repeat 1K times and report the
// average" protocol.
type Agg struct {
	n         int
	tasks     float64
	rounds    float64
	precision float64
	recall    float64
	f1        float64
}

// Add folds one repetition into the aggregate.
func (a *Agg) Add(m Metrics) {
	a.n++
	a.tasks += float64(m.Tasks)
	a.rounds += float64(m.Rounds)
	a.precision += m.Precision
	a.recall += m.Recall
	a.f1 += m.F1()
}

// N reports how many repetitions have been added.
func (a *Agg) N() int { return a.n }

// Mean returns the component-wise means. F-measure is averaged per
// repetition (mean of F1s), not recomputed from mean P/R.
func (a *Agg) Mean() (tasks, rounds, precision, recall, f1 float64) {
	if a.n == 0 {
		return 0, 0, 0, 0, 0
	}
	n := float64(a.n)
	return a.tasks / n, a.rounds / n, a.precision / n, a.recall / n, a.f1 / n
}

// String renders the aggregate in the compact form used by the
// benchmark harness output.
func (a *Agg) String() string {
	t, r, p, rec, f := a.Mean()
	return fmt.Sprintf("tasks=%.1f rounds=%.1f P=%.3f R=%.3f F1=%.3f", t, r, p, rec, f)
}

// Summary describes a distribution of float64 observations.
type Summary struct {
	N            int
	Mean, Stddev float64
	Min, Max     float64
	P50, P95     float64
}

// Summarize computes a Summary of xs. An empty input yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum, sumSq float64
	for _, x := range sorted {
		sum += x
		sumSq += x * x
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:      len(sorted),
		Mean:   mean,
		Stddev: math.Sqrt(variance),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		P50:    quantile(sorted, 0.50),
		P95:    quantile(sorted, 0.95),
	}
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Entropy returns the Shannon entropy (natural log) of a probability
// distribution; terms with p<=0 contribute zero. Used by the
// task-assignment objective (Eq. 3).
func Entropy(p []float64) float64 {
	var h float64
	for _, pi := range p {
		if pi > 0 {
			h -= pi * math.Log(pi)
		}
	}
	return h
}
