// Package stats provides the deterministic random-number substrate and
// the evaluation metrics (cost, latency, F-measure) used throughout the
// CDB reproduction. Every experiment in the paper is averaged over many
// repetitions; this package makes those repetitions reproducible
// bit-for-bit by deriving all randomness from explicit, splittable
// seeds instead of global state.
package stats

import (
	"math"
)

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** over a SplitMix64-expanded seed). It is not safe for
// concurrent use; derive one generator per goroutine with Split.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed. Two generators built
// from the same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// SplitMix64 expansion so that small/nearby seeds still yield
	// well-distributed internal state.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent generator from this one. The parent
// stream advances by one; the child is seeded from the drawn value.
// Used to hand each simulated worker / repetition its own stream.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling would be overkill;
	// modulo bias is negligible for the n (< 2^20) used here, but we
	// reject the biased tail anyway to keep tests exact.
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Norm returns a normally distributed float64 with the given mean and
// standard deviation (Box–Muller; one value per call, the pair's
// second half is discarded to keep stream consumption predictable).
func (r *RNG) Norm(mean, stddev float64) float64 {
	// Avoid log(0).
	u1 := 1 - r.Float64()
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// NormClamped draws from N(mean, stddev^2) and clamps into [lo, hi].
// The paper draws worker accuracies from N(q, 0.01) which must remain
// valid probabilities.
func (r *RNG) NormClamped(mean, stddev, lo, hi float64) float64 {
	v := r.Norm(mean, stddev)
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher–Yates shuffle of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniformly chosen element of xs. It panics on an empty
// slice.
func Pick[T any](r *RNG, xs []T) T {
	return xs[r.Intn(len(xs))]
}

// HashString folds a string into 64 bits (FNV-1a), for keying HashRNG
// with identifiers such as market names.
func HashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// HashRNG derives a generator from a seed and a sequence of key parts.
// Unlike Split, the result depends only on the inputs — not on how many
// values were drawn before — so concurrent subsystems can reconstruct
// the exact same stream for a logical entity (a task attempt, a worker
// assignment) regardless of goroutine scheduling. This is the substrate
// of the fault injector's order-independent determinism.
func HashRNG(seed uint64, parts ...uint64) *RNG {
	h := seed
	for _, p := range parts {
		// SplitMix64 finalizer per part: cheap, well-mixed, and immune to
		// the part-ordering collisions a plain xor/add would have.
		h += 0x9e3779b97f4a7c15
		z := h ^ p
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		h = z ^ (z >> 31)
	}
	return NewRNG(h)
}
