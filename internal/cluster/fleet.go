package cluster

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"cdb"
	"cdb/client"
	"cdb/internal/obs"
)

// Fleet metrics (coordinator side).
var (
	mRouteDirect  = obs.Default.Counter("cdb_cluster_route_direct_total")
	mRouteScatter = obs.Default.Counter("cdb_cluster_route_scatter_total")
	mSpills       = obs.Default.Counter("cdb_cluster_spills_total")
	mFailovers    = obs.Default.Counter("cdb_cluster_failovers_total")
	mShardDown    = obs.Default.Counter("cdb_cluster_shard_down_total")
	mReplPushed   = obs.Default.Counter("cdb_cluster_replicated_entries_total")
)

// ErrDegraded means no live shard could execute a required slice of
// the query: every candidate is down (or draining). The serving layer
// maps it to 503.
var ErrDegraded = errors.New("cluster: no live shard available")

// Config assembles a Fleet.
type Config struct {
	// Planner is a local engine over the same dataset/seed as every
	// shard. The coordinator uses it only to plan statements into
	// component keys and to fingerprint the configuration — it never
	// executes queries on it.
	Planner *cdb.Engine
	// Backends are the shards, one per ring member.
	Backends []Backend
	// SpillQueue is the queue depth at which a scatter part prefers a
	// less-loaded shard over the component owner (0 disables load
	// spill; ownership then only moves on failure).
	SpillQueue int
	// Logger receives routing and failover lines; nil discards.
	Logger *log.Logger
}

// Fleet is the coordinator: it routes whole statements to component
// owners, scatter-gathers multi-component statements, replicates
// verdict-cache deltas, and fails over within the ring. Safe for
// concurrent use.
type Fleet struct {
	planner     *cdb.Engine
	ring        *Ring
	backends    map[string]Backend
	fingerprint string
	spillQueue  int
	log         *log.Logger

	mu       sync.Mutex
	cursor   map[string]int64 // replication cursor per source shard
	down     map[string]bool
	queued   map[string]int // last observed queue depth per shard
	inflight map[string]int // parts this coordinator is running per shard

	replStop chan struct{}
	replOnce sync.Once
	replWG   sync.WaitGroup
}

// New builds a Fleet over the planner engine and shard backends.
func New(cfg Config) (*Fleet, error) {
	if cfg.Planner == nil || len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("cluster: Config.Planner and at least one Backend are required")
	}
	if cfg.Logger == nil {
		cfg.Logger = log.New(nopWriter{}, "", 0)
	}
	f := &Fleet{
		planner:     cfg.Planner,
		backends:    make(map[string]Backend, len(cfg.Backends)),
		fingerprint: cfg.Planner.Fingerprint(),
		spillQueue:  cfg.SpillQueue,
		log:         cfg.Logger,
		cursor:      map[string]int64{},
		down:        map[string]bool{},
		queued:      map[string]int{},
		inflight:    map[string]int{},
	}
	ids := make([]string, 0, len(cfg.Backends))
	for _, b := range cfg.Backends {
		if _, dup := f.backends[b.ID()]; dup {
			return nil, fmt.Errorf("cluster: duplicate shard id %q", b.ID())
		}
		f.backends[b.ID()] = b
		ids = append(ids, b.ID())
	}
	f.ring = NewRing(ids)
	return f, nil
}

type nopWriter struct{}

func (nopWriter) Write(p []byte) (int, error) { return len(p), nil }

// Ring exposes the fleet's ring (read-only).
func (f *Fleet) Ring() *Ring { return f.ring }

// Plan validates a statement on the coordinator's planner without
// executing it: parse, catalog and support errors surface here with
// the same typed errors a local Submit would return.
func (f *Fleet) Plan(query string) error {
	_, err := f.planner.ComponentKeys(query)
	return err
}

// Fingerprint is the fleet's required engine fingerprint.
func (f *Fleet) Fingerprint() string { return f.fingerprint }

// Exec routes one statement: single-component (or component-free)
// statements go whole to one shard; multi-component statements scatter
// one slice per owner and merge deterministically. The result is
// bit-identical to a single-node execution of the same statement under
// the same seed.
func (f *Fleet) Exec(ctx context.Context, query string, timeoutMs int64) (*cdb.Result, error) {
	return f.exec(ctx, query, timeoutMs, nil)
}

// ExecStream is Exec with a per-round hook. Scatter routes emit merged
// round events: round r is delivered once every live slice has
// reported round r (or finished), with cumulative fields summed so the
// stream a client sees is the one a single node would have sent.
func (f *Fleet) ExecStream(ctx context.Context, query string, timeoutMs int64, onRound func(cdb.RoundUpdate)) (*cdb.Result, error) {
	return f.exec(ctx, query, timeoutMs, onRound)
}

// RoundUpdate re-exported for merge bookkeeping.
type RoundUpdate = cdb.RoundUpdate

func (f *Fleet) exec(ctx context.Context, query string, timeoutMs int64, onRound func(RoundUpdate)) (*cdb.Result, error) {
	keys, err := f.planner.ComponentKeys(query)
	if err != nil {
		return nil, err
	}
	owners := map[string][]string{}
	for _, k := range keys {
		o := f.ring.Owner(k)
		owners[o] = append(owners[o], k)
	}

	if len(owners) <= 1 {
		// Direct route: the whole statement runs on one shard, response
		// returned as-is (modulo the piggybacked cache delta).
		mRouteDirect.Inc()
		prefKey := query
		for _, k := range keys {
			prefKey = k // single component: prefer its owner
		}
		req := ExecRequest{Query: query, TimeoutMs: timeoutMs, Shards: f.ring.Members(), Fingerprint: f.fingerprint}
		resp, src, err := f.execPart(ctx, req, prefKey, onRound)
		if err != nil {
			return nil, err
		}
		f.replicate(ctx, src, resp)
		return resp.Result, nil
	}

	mRouteScatter.Inc()
	targets := make([]string, 0, len(owners))
	for o := range owners {
		targets = append(targets, o)
	}
	sort.Strings(targets)

	parts, err := f.scatter(ctx, query, timeoutMs, targets, owners, onRound)
	if err != nil {
		return nil, err
	}
	for _, p := range parts {
		f.replicate(ctx, p.src, p.resp)
	}
	res, err := mergeParts(parts)
	if err != nil {
		return nil, err
	}
	res.RequestID = requestIDFrom(ctx)
	return res, nil
}

// part is one completed scatter slice.
type part struct {
	target string
	src    string // shard that actually executed (failover may move it)
	resp   *ExecResponse
}

// scatter runs one slice per target concurrently. Round events from
// all slices merge into single-node-shaped round updates when onRound
// is set.
func (f *Fleet) scatter(ctx context.Context, query string, timeoutMs int64, targets []string, owners map[string][]string, onRound func(RoundUpdate)) ([]part, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var merger *roundMerger
	if onRound != nil {
		merger = newRoundMerger(targets, onRound)
	}

	parts := make([]part, len(targets))
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, target := range targets {
		i, target := i, target
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := ExecRequest{
				Query:       query,
				TimeoutMs:   timeoutMs,
				Shards:      f.ring.Members(),
				Target:      target,
				Fingerprint: f.fingerprint,
			}
			var hook func(RoundUpdate)
			if merger != nil {
				hook = func(u RoundUpdate) { merger.deliver(target, u) }
			}
			resp, src, err := f.execPart(ctx, req, owners[target][0], hook)
			if err != nil {
				errs[i] = err
				cancel()
				return
			}
			if merger != nil {
				merger.finish(target)
			}
			parts[i] = part{target: target, src: src, resp: resp}
		}()
	}
	wg.Wait()
	// A failing slice cancels its siblings; report the originating
	// error, not the context.Canceled noise it caused.
	var slicesErr error
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			slicesErr = err
			break
		}
	}
	if slicesErr == nil {
		for _, err := range errs {
			if err != nil {
				slicesErr = err
				break
			}
		}
	}
	if slicesErr != nil {
		return nil, slicesErr
	}
	if merger != nil {
		merger.flush()
	}
	return parts, nil
}

// execPart executes one request against the best candidate shard,
// spilling on overload and failing over on unavailability. prefKey
// anchors the deterministic candidate order in the ring.
func (f *Fleet) execPart(ctx context.Context, req ExecRequest, prefKey string, onRound func(RoundUpdate)) (*ExecResponse, string, error) {
	cands := f.candidates(prefKey)
	var lastErr error
	overloaded := false
	for _, id := range cands {
		if ctx.Err() != nil {
			return nil, "", ctx.Err()
		}
		b := f.backends[id]
		r := req
		r.CacheSince = f.cursorFor(id)
		var resp *ExecResponse
		var err error
		delivered := 0
		f.noteDispatch(id, 1)
		if onRound != nil {
			resp, err = b.ExecStream(ctx, r, func(u RoundUpdate) {
				delivered++
				onRound(u)
			})
		} else {
			resp, err = b.Exec(ctx, r)
		}
		f.noteDispatch(id, -1)
		if err == nil {
			f.markUp(id)
			return resp, id, nil
		}
		if delivered > 0 {
			// Rounds already reached the caller: retrying elsewhere would
			// replay them. The stream fails; the client re-issues (and
			// the replicated cache makes the retry nearly free).
			f.markDown(id)
			return nil, "", err
		}
		switch classify(err) {
		case failOverloaded:
			// Admission control on the shard: spill to the next ring
			// candidate — execution there returns identical bytes.
			f.noteQueued(id, f.spillQueue+1)
			mSpills.Inc()
			f.log.Printf("cluster: shard %s overloaded, spilling", id)
			overloaded = true
			lastErr = err
		case failUnavailable:
			f.markDown(id)
			mFailovers.Inc()
			f.log.Printf("cluster: shard %s unavailable (%v), failing over", id, err)
			lastErr = err
		default:
			// A real query error (parse, unknown table, timeout):
			// retrying elsewhere would just repeat it.
			return nil, "", err
		}
	}
	if overloaded {
		return nil, "", lastErr
	}
	if lastErr != nil {
		return nil, "", fmt.Errorf("%w: %v", ErrDegraded, lastErr)
	}
	return nil, "", ErrDegraded
}

// candidates orders the live shards for one part. The base order is
// ring preference (the component owner first — warmest private cache),
// with overloaded shards (observed queue depth past SpillQueue)
// demoted behind the rest. With SpillQueue enabled the live set is
// additionally stable-sorted by the coordinator's own in-flight count
// per shard: replication keeps every shard's verdict cache warm, so
// ownership is a cache-locality preference rather than a correctness
// constraint, and routing a part to an idle shard beats queueing
// behind a busy owner. An idle fleet has all counts at zero, so
// sequential traffic still lands on ring owners deterministically.
func (f *Fleet) candidates(prefKey string) []string {
	pref := f.ring.Prefer(prefKey)
	f.mu.Lock()
	defer f.mu.Unlock()
	live := make([]string, 0, len(pref))
	busy := make([]string, 0)
	for _, id := range pref {
		if f.down[id] {
			continue
		}
		if f.spillQueue > 0 && f.queued[id] > f.spillQueue {
			busy = append(busy, id)
			continue
		}
		live = append(live, id)
	}
	if f.spillQueue > 0 {
		sort.SliceStable(live, func(i, j int) bool {
			return f.inflight[live[i]] < f.inflight[live[j]]
		})
	}
	return append(live, busy...)
}

// noteDispatch tracks parts in flight per shard for load-aware
// candidate ordering.
func (f *Fleet) noteDispatch(id string, d int) {
	f.mu.Lock()
	f.inflight[id] += d
	f.mu.Unlock()
}

type failClass int

const (
	failHard failClass = iota
	failOverloaded
	failUnavailable
)

// classify sorts a shard error into spill / failover / propagate.
func classify(err error) failClass {
	if errors.Is(err, cdb.ErrOverloaded) {
		return failOverloaded
	}
	var ae *client.APIError
	if errors.As(err, &ae) {
		switch {
		case ae.Code == client.CodeDraining:
			return failUnavailable
		case ae.Status >= 500 && ae.Code == client.CodeInternal && ae.Status != 504:
			return failUnavailable
		}
		return failHard
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return failHard
	}
	// Transport-level failure: connection refused, reset, torn stream.
	return failUnavailable
}

// replicate advances the replication cursor for src and pushes its
// piggybacked delta to every other live shard before the caller's
// response is returned — sequential workloads therefore observe
// synchronous replication, which is what keeps wire-visible Stats of a
// clustered run identical to a single node's.
func (f *Fleet) replicate(ctx context.Context, src string, resp *ExecResponse) {
	if resp == nil {
		return
	}
	f.mu.Lock()
	if resp.CacheSeq > f.cursor[src] {
		f.cursor[src] = resp.CacheSeq
	}
	f.mu.Unlock()
	f.push(ctx, src, resp.CacheEntries)
}

// push applies entries to every live shard except the source.
func (f *Fleet) push(ctx context.Context, src string, entries []cdb.CacheEntry) {
	if len(entries) == 0 {
		return
	}
	for id, b := range f.backends {
		if id == src || f.isDown(id) {
			continue
		}
		if _, err := b.CacheApply(ctx, entries); err != nil {
			f.log.Printf("cluster: cache apply to %s failed: %v", id, err)
			f.markDown(id)
			continue
		}
		mReplPushed.Add(int64(len(entries)))
	}
}

// StartReplication runs the background anti-entropy loop: every
// interval, pull each live shard's verdict delta since the fleet's
// cursor and push it to the others, and probe down shards back into
// rotation (fingerprint-checked). The piggybacked path keeps
// sequential traffic consistent on its own; this loop covers
// concurrent traffic and recovered shards. Stop with StopReplication.
func (f *Fleet) StartReplication(interval time.Duration) {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	f.replStop = make(chan struct{})
	f.replWG.Add(1)
	go func() {
		defer f.replWG.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-f.replStop:
				return
			case <-tick.C:
				f.replicateOnce(context.Background())
			}
		}
	}()
}

// StopReplication stops the loop started by StartReplication.
func (f *Fleet) StopReplication() {
	f.replOnce.Do(func() {
		if f.replStop != nil {
			close(f.replStop)
		}
	})
	f.replWG.Wait()
}

// replicateOnce is one anti-entropy pass.
func (f *Fleet) replicateOnce(ctx context.Context) {
	for _, id := range f.ring.Members() {
		b := f.backends[id]
		h, err := b.Health(ctx)
		if err != nil {
			f.markDown(id)
			continue
		}
		if h.Fingerprint != f.fingerprint {
			f.log.Printf("cluster: shard %s fingerprint %s != fleet %s; keeping out of rotation", id, h.Fingerprint, f.fingerprint)
			f.markDown(id)
			continue
		}
		wasDown := f.isDown(id)
		if h.Draining {
			f.markDown(id)
			continue
		}
		f.markUp(id)
		f.noteQueued(id, h.Queued)
		if wasDown {
			f.log.Printf("cluster: shard %s back in rotation", id)
			// A restarted shard lost its imported verdicts: reset the
			// cursor so the next pull re-sends from its new log head
			// (CacheDelta handles the full-dump fallback for us) and
			// push it everything the fleet knows.
			f.mu.Lock()
			f.cursor[id] = 0
			f.mu.Unlock()
			f.refill(ctx, id)
		}
		entries, seq, err := b.CacheDelta(ctx, f.cursorFor(id))
		if err != nil {
			f.markDown(id)
			continue
		}
		f.mu.Lock()
		if seq > f.cursor[id] {
			f.cursor[id] = seq
		}
		f.mu.Unlock()
		f.push(ctx, id, entries)
	}
}

// refill pushes every other live shard's full settled cache to a shard
// that just rejoined.
func (f *Fleet) refill(ctx context.Context, target string) {
	tb := f.backends[target]
	for id, b := range f.backends {
		if id == target || f.isDown(id) {
			continue
		}
		entries, _, err := b.CacheDelta(ctx, 0)
		if err != nil || len(entries) == 0 {
			continue
		}
		if _, err := tb.CacheApply(ctx, entries); err != nil {
			f.markDown(target)
			return
		}
		mReplPushed.Add(int64(len(entries)))
	}
}

// Health snapshots every shard's health (down shards report an error
// string); used by the coordinator's cluster health endpoint.
type ShardHealth struct {
	ID       string `json:"id"`
	Live     bool   `json:"live"`
	Queued   int    `json:"queued"`
	CacheSeq int64  `json:"cache_seq"`
	Error    string `json:"error,omitempty"`
}

// Health probes all shards.
func (f *Fleet) Health(ctx context.Context) []ShardHealth {
	out := make([]ShardHealth, 0, len(f.backends))
	for _, id := range f.ring.Members() {
		h, err := f.backends[id].Health(ctx)
		sh := ShardHealth{ID: id}
		if err != nil {
			sh.Error = err.Error()
			f.markDown(id)
		} else {
			sh.Live = !h.Draining
			sh.Queued = h.Queued
			sh.CacheSeq = h.CacheSeq
			if h.Draining {
				f.markDown(id)
			} else {
				f.markUp(id)
			}
		}
		out = append(out, sh)
	}
	return out
}

func (f *Fleet) cursorFor(id string) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cursor[id]
}

func (f *Fleet) isDown(id string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.down[id]
}

func (f *Fleet) markDown(id string) {
	f.mu.Lock()
	if !f.down[id] {
		f.down[id] = true
		mShardDown.Inc()
	}
	f.mu.Unlock()
}

func (f *Fleet) markUp(id string) {
	f.mu.Lock()
	f.down[id] = false
	f.queued[id] = 0
	f.mu.Unlock()
}

func (f *Fleet) noteQueued(id string, depth int) {
	f.mu.Lock()
	f.queued[id] = depth
	f.mu.Unlock()
}
