package cluster

import (
	"cdb"
	"cdb/client"
)

// Cluster wire schema, shared by the coordinator's HTTP backend and
// the shard endpoints in internal/server (same pattern as the public
// /v1 schema living in package client).

// ExecRequest is the body of POST /v1/cluster/exec(/stream): one
// statement plus the fleet layout that scopes this shard's slice of
// it. The executing shard rebuilds the same plan the coordinator saw
// and restricts itself to the components the ring assigns to Target,
// so the request is self-describing — any shard can execute any
// target.
type ExecRequest struct {
	// Query is one CQL SELECT statement.
	Query string `json:"query"`
	// TimeoutMs optionally bounds execution shard-side, exactly like
	// the public endpoint's field.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// Shards is the fleet's full member list; every node derives the
	// same consistent-hash ring from it.
	Shards []string `json:"shards"`
	// Target is the shard whose components this execution owns. Empty
	// means the whole statement (the coordinator's direct route for
	// single-component queries).
	Target string `json:"target,omitempty"`
	// CacheSince is the caller's replication cursor for this shard:
	// the response piggybacks every verdict the shard settled after it.
	CacheSince int64 `json:"cache_since"`
	// Fingerprint is the caller's engine fingerprint; the shard
	// refuses to execute under a mismatch (different seed, redundancy,
	// epsilon or worker pool would silently break bit-identity).
	Fingerprint string `json:"fingerprint,omitempty"`
}

// ExecResponse is one shard's completed slice.
type ExecResponse struct {
	// Result is the ordinary wire result of the (possibly restricted)
	// execution.
	Result *cdb.Result `json:"result"`
	// Shard is the scatter-gather sidecar (nil on the direct route).
	Shard *cdb.ShardInfo `json:"shard,omitempty"`
	// CacheEntries / CacheSeq piggyback the shard's verdict-cache delta
	// since the request's CacheSince, so sequential workloads replicate
	// synchronously — a verdict paid here is visible fleet-wide before
	// the next statement runs.
	CacheEntries []cdb.CacheEntry `json:"cache_entries,omitempty"`
	CacheSeq     int64            `json:"cache_seq"`
}

// StreamFrame is one NDJSON line of POST /v1/cluster/exec/stream:
// round events in order, terminated by exactly one final or error
// frame.
type StreamFrame struct {
	Type string `json:"type"` // "round" | "final" | "error"
	// Round carries the per-round snapshot (Type "round").
	Round *cdb.RoundUpdate `json:"round,omitempty"`
	// Final carries the completed slice (Type "final").
	Final *ExecResponse `json:"final,omitempty"`
	// Error carries the terminal failure (Type "error").
	Error *client.ErrorPayload `json:"error,omitempty"`
}

// DeltaResponse is the body of GET /v1/cache/delta?since=N: the
// shard's settled verdicts after sequence N (or a full dump when N
// precedes the log horizon) and the cursor to resume from.
type DeltaResponse struct {
	Entries []cdb.CacheEntry `json:"entries"`
	Seq     int64            `json:"seq"`
}

// ApplyRequest is the body of POST /v1/cache/apply: verdicts
// replicated from a peer shard.
type ApplyRequest struct {
	Entries []cdb.CacheEntry `json:"entries"`
}

// ApplyResponse reports how many applied entries were new.
type ApplyResponse struct {
	Imported int `json:"imported"`
}

// HealthResponse is the body of GET /v1/cluster/health: identity,
// compatibility and load, the inputs of routing decisions.
type HealthResponse struct {
	ID          string `json:"id"`
	Fingerprint string `json:"fingerprint"`
	// Executing / Queued report admission pressure (see
	// Engine.QueueDepth).
	Executing int `json:"executing"`
	Queued    int `json:"queued"`
	// CacheSeq is the shard's replication cursor head.
	CacheSeq int64 `json:"cache_seq"`
	// Draining marks a shard past SIGTERM: still finishing accepted
	// queries, not accepting new ones.
	Draining bool `json:"draining,omitempty"`
}
