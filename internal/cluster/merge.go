package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"cdb"
	"cdb/internal/crowd"
	"cdb/internal/reqid"
	"cdb/internal/stats"
)

// mergeParts reassembles scatter slices into the result a single node
// would have produced, field by field:
//
//   - Rows return to single-node order by sorting the union on each
//     slice's MergeKeys (plan-deterministic enumeration positions, see
//     exec.MergeKeys).
//   - Tasks, Assignments, Coalesced, CachedTasks and Inferred sum —
//     components never share tasks, so the per-shard counts partition
//     the whole run's.
//   - Rounds is the max: shards run their waves in lockstep with what
//     the single node would have done, just with fewer components each.
//   - HITs and Dollars are recomputed from the summed assignments —
//     HIT packing rounds up per run, so summing per-shard HITs would
//     overcharge relative to one node.
//   - Precision and recall are rebuilt from the summed ground-truth
//     counts each slice carries, replicating stats.PrecisionRecall's
//     empty-set conventions exactly.
//
// parts must be non-empty and ordered deterministically (the scatter
// path orders them by target shard id).
func mergeParts(parts []part) (*cdb.Result, error) {
	type mrow struct {
		key  []int
		cols []string
		conf float64
	}
	var merged []mrow
	anyConf := false
	out := &cdb.Result{}
	truthTotal, truthCorrect := 0, 0
	for i, p := range parts {
		r := p.resp.Result
		sh := p.resp.Shard
		if r == nil || sh == nil {
			return nil, fmt.Errorf("cluster: shard %s returned no scatter sidecar", p.src)
		}
		if len(sh.MergeKeys) != len(r.Rows) {
			return nil, fmt.Errorf("cluster: shard %s sidecar has %d merge keys for %d rows",
				p.src, len(sh.MergeKeys), len(r.Rows))
		}
		if i == 0 {
			out.Columns = r.Columns
		}
		if r.Confidence != nil {
			anyConf = true
		}
		for j, cols := range r.Rows {
			c := 1.0
			if r.Confidence != nil {
				c = r.Confidence[j]
			}
			merged = append(merged, mrow{key: sh.MergeKeys[j], cols: cols, conf: c})
		}
		truthTotal += sh.TruthTotal
		truthCorrect += sh.TruthCorrect

		s := r.Stats
		out.Stats.Tasks += s.Tasks
		out.Stats.Assignments += s.Assignments
		if s.Rounds > out.Stats.Rounds {
			out.Stats.Rounds = s.Rounds
		}
		out.Stats.Coalesced += s.Coalesced
		out.Stats.CachedTasks += s.CachedTasks
		out.Stats.Inferred += s.Inferred
		out.Stats.Lost += s.Lost
		out.Stats.Retried += s.Retried
		out.Stats.Hedged += s.Hedged
		out.Stats.Late += s.Late
		out.Stats.Duplicates += s.Duplicates
		out.Stats.RoundsTruncated += s.RoundsTruncated
		if s.Partial {
			out.Stats.Partial = true
			if out.Stats.Reason == "" {
				out.Stats.Reason = s.Reason
			}
		}
	}

	sort.SliceStable(merged, func(i, j int) bool {
		a, b := merged[i].key, merged[j].key
		for k := range a {
			if k >= len(b) {
				return false
			}
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	for _, m := range merged {
		out.Rows = append(out.Rows, m.cols)
	}
	if anyConf && len(merged) > 0 {
		out.Confidence = make([]float64, len(merged))
		for i, m := range merged {
			out.Confidence[i] = m.conf
		}
	}

	out.Stats.HITs = crowd.DefaultPricing.HITs(out.Stats.Assignments)
	out.Stats.Dollars = crowd.DefaultPricing.Cost(out.Stats.Assignments)

	// stats.PrecisionRecall's conventions, over the merged sets.
	returned := len(out.Rows)
	switch {
	case returned == 0 && truthTotal == 0:
		out.Stats.Precision, out.Stats.Recall = 1, 1
	case returned == 0:
		out.Stats.Precision, out.Stats.Recall = 0, 0
	case truthTotal == 0:
		out.Stats.Precision, out.Stats.Recall = float64(truthCorrect)/float64(returned), 1
	default:
		out.Stats.Precision = float64(truthCorrect) / float64(returned)
		out.Stats.Recall = float64(truthCorrect) / float64(truthTotal)
	}
	out.Stats.F1 = stats.F1(out.Stats.Precision, out.Stats.Recall)

	out.Message = fmt.Sprintf("%d answers, %d tasks, %d rounds", len(out.Rows), out.Stats.Tasks, out.Stats.Rounds)
	if out.Stats.Coalesced+out.Stats.CachedTasks > 0 {
		out.Message += fmt.Sprintf(" (%d shared)", out.Stats.Coalesced+out.Stats.CachedTasks)
	}
	return out, nil
}

// requestIDFrom recovers the serving tier's correlation ID for the
// merged result, mirroring what a single node stamps on its own.
func requestIDFrom(ctx context.Context) string {
	return reqid.From(ctx).RequestID
}

// roundMerger turns per-shard round streams into the round stream a
// single node would emit: merged round r is released once every shard
// has either delivered its round r or finished, with a finished
// shard's final cumulative totals carried forward (wave alignment; the
// rule is proven by exec's TestShardedUnionBitIdentical).
type roundMerger struct {
	mu      sync.Mutex
	onRound func(RoundUpdate)
	updates map[string][]RoundUpdate
	done    map[string]bool
	emitted int
}

func newRoundMerger(targets []string, onRound func(RoundUpdate)) *roundMerger {
	m := &roundMerger{
		onRound: onRound,
		updates: make(map[string][]RoundUpdate, len(targets)),
		done:    make(map[string]bool, len(targets)),
	}
	for _, t := range targets {
		m.updates[t] = nil
		m.done[t] = false
	}
	return m
}

// deliver records shard's next round and emits any now-complete merged
// rounds. Runs on the shard's stream goroutine; emission order is
// serialized by the lock.
func (m *roundMerger) deliver(shard string, u RoundUpdate) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.updates[shard] = append(m.updates[shard], u)
	m.emitReady()
}

// finish marks shard's stream complete.
func (m *roundMerger) finish(shard string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.done[shard] = true
	m.emitReady()
}

// flush emits whatever rounds remain once every shard has finished.
func (m *roundMerger) flush() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for s := range m.done {
		m.done[s] = true
	}
	m.emitReady()
}

// emitReady releases merged rounds while every shard has caught up to
// them (delivered that round, or finished for good). Callers hold mu.
func (m *roundMerger) emitReady() {
	for {
		r := m.emitted + 1
		ready := true
		progress := false
		for s, ups := range m.updates {
			if len(ups) >= r {
				progress = true
				continue
			}
			if !m.done[s] {
				ready = false
				break
			}
		}
		if !ready || !progress {
			return
		}
		var merged RoundUpdate
		merged.Round = r
		for _, ups := range m.updates {
			if len(ups) >= r {
				u := ups[r-1]
				merged.Tasks += u.Tasks
				merged.Assignments += u.Assignments
				merged.Blue += u.Blue
				merged.Red += u.Red
				merged.Inferred += u.Inferred
				merged.Open += u.Open
				merged.TasksTotal += u.TasksTotal
				merged.AssignmentsTotal += u.AssignmentsTotal
			} else if len(ups) > 0 {
				last := ups[len(ups)-1]
				merged.Open += last.Open
				merged.TasksTotal += last.TasksTotal
				merged.AssignmentsTotal += last.AssignmentsTotal
			}
		}
		m.emitted = r
		m.onRound(merged)
	}
}
