package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"cdb"
	"cdb/client"
	"cdb/internal/dataset"
)

// testEngine opens an engine over the shared test universe. Every call
// yields an engine with the same fingerprint: identical DB seed,
// dataset, and worker pool — the cluster compatibility contract.
func testEngine(t *testing.T) *cdb.Engine {
	t.Helper()
	db := cdb.Open(cdb.WithSeed(7), cdb.WithDataset("paper", 0.1, 7), cdb.WithWorkers(50, 0.8, 0.1))
	e, err := db.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

// testWorkload is the paper's query mix plus a repeat of the first
// statement, so the run exercises fresh crowd work, cross-statement
// verdict reuse, and the whole-answer cache.
func testWorkload() []string {
	qs := dataset.Queries("paper")
	labels := dataset.QueryLabels()
	out := make([]string, 0, len(labels)+1)
	for _, l := range labels {
		out = append(out, qs[l])
	}
	return append(out, qs[labels[0]])
}

// marshal renders a result to the exact bytes the serving layer would
// put on the wire.
func marshal(t *testing.T, res *cdb.Result) string {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestFleetBitIdentical is the tentpole invariant end to end: a
// 2-shard fleet executing the full workload returns byte-for-byte the
// results a single node produces, including Stats — which requires
// the scatter merge to be exact and verdict replication to keep every
// shard's cache as warm as the single node's would be.
func TestFleetBitIdentical(t *testing.T) {
	single := testEngine(t)
	var want []string
	for _, q := range testWorkload() {
		fut, err := single.Submit(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := fut.Result(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, marshal(t, res))
	}

	shardA, shardB := testEngine(t), testEngine(t)
	fleet, err := New(Config{
		Planner:  testEngine(t),
		Backends: []Backend{NewLocalBackend("a", shardA), NewLocalBackend("b", shardB)},
	})
	if err != nil {
		t.Fatal(err)
	}

	// The workload must exercise both routes for the test to mean
	// anything: at least one statement spanning both shards and one
	// owned whole by a single shard.
	directs, scatters := 0, 0
	for _, q := range testWorkload() {
		keys, err := fleet.planner.ComponentKeys(q)
		if err != nil {
			t.Fatal(err)
		}
		owners := map[string]bool{}
		for _, k := range keys {
			owners[fleet.ring.Owner(k)] = true
		}
		if len(owners) > 1 {
			scatters++
		} else {
			directs++
		}
	}
	if scatters == 0 {
		t.Fatal("workload never scatters: test is vacuous")
	}

	for i, q := range testWorkload() {
		res, err := fleet.Exec(context.Background(), q, 0)
		if err != nil {
			t.Fatalf("statement %d: %v", i, err)
		}
		if got := marshal(t, res); got != want[i] {
			t.Fatalf("statement %d diverged from single node:\nfleet:  %s\nsingle: %s", i, got, want[i])
		}
	}

	// Replication pushed verdicts both ways (scattered statements pay
	// crowd work on both shards).
	if imported := shardA.Stats().RemoteImported + shardB.Stats().RemoteImported; imported == 0 {
		t.Fatal("no verdicts replicated between shards")
	}

	// Steady-state routing keeps each component on the shard that paid
	// for it, so replicated verdicts earn their keep on failover and
	// spill. Simulate one: execute a scattering statement whole on
	// shard b — the components shard a paid for must now be served from
	// b's imported remote verdicts, with zero fresh crowd spend.
	var scattered string
	for _, q := range testWorkload() {
		keys, err := fleet.planner.ComponentKeys(q)
		if err != nil {
			t.Fatal(err)
		}
		owners := map[string]bool{}
		for _, k := range keys {
			owners[fleet.ring.Owner(k)] = true
		}
		if len(owners) > 1 {
			scattered = q
			break
		}
	}
	issuedBefore := shardB.Stats().AssignmentsIssued
	fut, err := shardB.Submit(context.Background(), scattered)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut.Result(context.Background()); err != nil {
		t.Fatal(err)
	}
	stB := shardB.Stats()
	if stB.RemoteHits == 0 {
		t.Fatal("off-owner execution produced no cross-shard cache hits")
	}
	if stB.AssignmentsIssued != issuedBefore {
		t.Fatalf("off-owner execution bought fresh crowd work: %d new assignments",
			stB.AssignmentsIssued-issuedBefore)
	}
}

// TestFleetStreamMergesRounds compares the merged round stream of a
// scattered statement against the single node's stream: same rounds in
// the same order with identical cumulative counters, then an identical
// final result.
func TestFleetStreamMergesRounds(t *testing.T) {
	// Find a statement that scatters across the 2-shard ring.
	planner := testEngine(t)
	ring := NewRing([]string{"a", "b"})
	var query string
	for _, q := range testWorkload() {
		keys, err := planner.ComponentKeys(q)
		if err != nil {
			t.Fatal(err)
		}
		owners := map[string]bool{}
		for _, k := range keys {
			owners[ring.Owner(k)] = true
		}
		if len(owners) > 1 {
			query = q
			break
		}
	}
	if query == "" {
		t.Fatal("no scattering statement in the workload")
	}

	single := testEngine(t)
	var wantRounds []cdb.RoundUpdate
	fut, err := single.SubmitWithProgress(context.Background(), query, func(u cdb.RoundUpdate) {
		wantRounds = append(wantRounds, u)
	})
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := fut.Result(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	fleet, err := New(Config{
		Planner:  planner,
		Backends: []Backend{NewLocalBackend("a", testEngine(t)), NewLocalBackend("b", testEngine(t))},
	})
	if err != nil {
		t.Fatal(err)
	}
	var gotRounds []cdb.RoundUpdate
	gotRes, err := fleet.ExecStream(context.Background(), query, 0, func(u cdb.RoundUpdate) {
		gotRounds = append(gotRounds, u)
	})
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(gotRounds, wantRounds) {
		t.Fatalf("merged rounds diverged:\nfleet:  %+v\nsingle: %+v", gotRounds, wantRounds)
	}
	if marshal(t, gotRes) != marshal(t, wantRes) {
		t.Fatalf("stream result diverged:\nfleet:  %s\nsingle: %s", marshal(t, gotRes), marshal(t, wantRes))
	}
}

// deadBackend refuses everything, simulating a crashed shard.
type deadBackend struct{ id string }

func (d deadBackend) ID() string { return d.id }
func (d deadBackend) Exec(context.Context, ExecRequest) (*ExecResponse, error) {
	return nil, fmt.Errorf("cluster: dial %s: connection refused", d.id)
}
func (d deadBackend) ExecStream(context.Context, ExecRequest, func(cdb.RoundUpdate)) (*ExecResponse, error) {
	return nil, fmt.Errorf("cluster: dial %s: connection refused", d.id)
}
func (d deadBackend) CacheDelta(context.Context, int64) ([]cdb.CacheEntry, int64, error) {
	return nil, 0, fmt.Errorf("cluster: dial %s: connection refused", d.id)
}
func (d deadBackend) CacheApply(context.Context, []cdb.CacheEntry) (int, error) {
	return 0, fmt.Errorf("cluster: dial %s: connection refused", d.id)
}
func (d deadBackend) Health(context.Context) (*HealthResponse, error) {
	return nil, fmt.Errorf("cluster: dial %s: connection refused", d.id)
}

// TestFleetFailover kills one shard of two and demands the fleet still
// return single-node bytes: any shard can execute any slice, so losing
// a shard costs capacity, never correctness.
func TestFleetFailover(t *testing.T) {
	single := testEngine(t)
	workload := testWorkload()[:3]
	var want []string
	for _, q := range workload {
		fut, err := single.Submit(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := fut.Result(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, marshal(t, res))
	}

	fleet, err := New(Config{
		Planner:  testEngine(t),
		Backends: []Backend{NewLocalBackend("a", testEngine(t)), deadBackend{id: "b"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range workload {
		res, err := fleet.Exec(context.Background(), q, 0)
		if err != nil {
			t.Fatalf("statement %d with a dead shard: %v", i, err)
		}
		if got := marshal(t, res); got != want[i] {
			t.Fatalf("statement %d diverged during failover:\nfleet:  %s\nsingle: %s", i, got, want[i])
		}
	}

	health := fleet.Health(context.Background())
	downSeen := false
	for _, h := range health {
		if h.ID == "b" && !h.Live && h.Error != "" {
			downSeen = true
		}
	}
	if !downSeen {
		t.Fatalf("dead shard not reported down: %+v", health)
	}
}

// overloadedBackend always sheds with 429, like a shard at its
// admission limit.
type overloadedBackend struct{ id string }

func overloadErr() error {
	return &client.APIError{Status: 429, Code: client.CodeOverloaded, Message: "engine overloaded", Offset: -1}
}
func (o overloadedBackend) ID() string { return o.id }
func (o overloadedBackend) Exec(context.Context, ExecRequest) (*ExecResponse, error) {
	return nil, overloadErr()
}
func (o overloadedBackend) ExecStream(context.Context, ExecRequest, func(cdb.RoundUpdate)) (*ExecResponse, error) {
	return nil, overloadErr()
}
func (o overloadedBackend) CacheDelta(context.Context, int64) ([]cdb.CacheEntry, int64, error) {
	return nil, 0, overloadErr()
}
func (o overloadedBackend) CacheApply(context.Context, []cdb.CacheEntry) (int, error) {
	return 0, overloadErr()
}
func (o overloadedBackend) Health(context.Context) (*HealthResponse, error) {
	return &HealthResponse{ID: o.id, Queued: 1 << 20}, nil
}

// TestFleetOverloadPropagates: when every candidate sheds, the fleet
// surfaces ErrOverloaded (so the serving layer answers 429 with
// Retry-After), not a degraded error.
func TestFleetOverloadPropagates(t *testing.T) {
	fleet, err := New(Config{
		Planner:  testEngine(t),
		Backends: []Backend{overloadedBackend{id: "a"}, overloadedBackend{id: "b"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = fleet.Exec(context.Background(), testWorkload()[0], 0)
	if !errors.Is(err, cdb.ErrOverloaded) {
		t.Fatalf("want ErrOverloaded through the fleet, got %v", err)
	}

	// All shards down is a different failure: degraded, mapped to 503.
	fleet, err = New(Config{
		Planner:  testEngine(t),
		Backends: []Backend{deadBackend{id: "a"}, deadBackend{id: "b"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = fleet.Exec(context.Background(), testWorkload()[0], 0)
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("want ErrDegraded with every shard dead, got %v", err)
	}
}
