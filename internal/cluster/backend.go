package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"cdb"
	"cdb/client"
	"cdb/internal/reqid"
)

// ErrFingerprint marks a fleet whose engines would not produce
// identical verdicts (seed, redundancy, epsilon or worker pool
// differ). Execution refuses rather than silently returning rows that
// depend on which shard ran them.
var ErrFingerprint = fmt.Errorf("cluster: engine fingerprint mismatch")

// Backend is one shard as the coordinator sees it: execute a (possibly
// component-restricted) statement, exchange verdict-cache deltas, and
// report health. Implementations: LocalBackend (in-process, used by
// benchmarks and tests) and HTTPBackend (a remote cdbd).
type Backend interface {
	ID() string
	Exec(ctx context.Context, req ExecRequest) (*ExecResponse, error)
	ExecStream(ctx context.Context, req ExecRequest, onRound func(cdb.RoundUpdate)) (*ExecResponse, error)
	CacheDelta(ctx context.Context, since int64) ([]cdb.CacheEntry, int64, error)
	CacheApply(ctx context.Context, entries []cdb.CacheEntry) (int, error)
	Health(ctx context.Context) (*HealthResponse, error)
}

// LocalBackend serves a shard from an in-process engine. RoundDelay,
// when set, sleeps that long after every completed crowd round — the
// benchmark's stand-in for real crowd round-trip latency, making
// throughput concurrency-bound the way a deployed fleet is.
type LocalBackend struct {
	id         string
	engine     *cdb.Engine
	RoundDelay time.Duration
}

// NewLocalBackend wraps an engine as shard id.
func NewLocalBackend(id string, engine *cdb.Engine) *LocalBackend {
	return &LocalBackend{id: id, engine: engine}
}

// ID implements Backend.
func (b *LocalBackend) ID() string { return b.id }

// Engine exposes the wrapped engine (shard endpoints reuse it).
func (b *LocalBackend) Engine() *cdb.Engine { return b.engine }

// Exec implements Backend.
func (b *LocalBackend) Exec(ctx context.Context, req ExecRequest) (*ExecResponse, error) {
	return b.exec(ctx, req, nil)
}

// ExecStream implements Backend. onRound runs on the query goroutine.
func (b *LocalBackend) ExecStream(ctx context.Context, req ExecRequest, onRound func(cdb.RoundUpdate)) (*ExecResponse, error) {
	return b.exec(ctx, req, onRound)
}

func (b *LocalBackend) exec(ctx context.Context, req ExecRequest, onRound func(cdb.RoundUpdate)) (*ExecResponse, error) {
	if req.Fingerprint != "" && req.Fingerprint != b.engine.Fingerprint() {
		return nil, fmt.Errorf("%w: shard %s has %s, caller sent %s",
			ErrFingerprint, b.id, b.engine.Fingerprint(), req.Fingerprint)
	}
	if req.TimeoutMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMs)*time.Millisecond)
		defer cancel()
	}
	progress := onRound
	if b.RoundDelay > 0 {
		delay := b.RoundDelay
		progress = func(u cdb.RoundUpdate) {
			time.Sleep(delay)
			if onRound != nil {
				onRound(u)
			}
		}
	}

	var fut *cdb.Future
	var err error
	if req.Target == "" {
		if progress != nil {
			fut, err = b.engine.SubmitWithProgress(ctx, req.Query, progress)
		} else {
			fut, err = b.engine.Submit(ctx, req.Query)
		}
	} else {
		ring := NewRing(req.Shards)
		target := req.Target
		run := &cdb.ShardRun{
			Fleet:  strings.Join(ring.Members(), ","),
			Target: target,
			Owned:  func(key string) bool { return ring.Owner(key) == target },
		}
		fut, err = b.engine.SubmitShard(ctx, req.Query, run, progress)
	}
	if err != nil {
		return nil, err
	}
	// Wait on a background context, like the serving layer: the Submit
	// ctx still governs the query, but a deadline must yield the
	// partial result, not a lost race.
	res, err := fut.Result(context.Background())
	if err != nil {
		return nil, err
	}
	resp := &ExecResponse{Result: res}
	if req.Target != "" {
		resp.Shard, _ = fut.ShardInfo(context.Background())
	}
	resp.CacheEntries, resp.CacheSeq = b.engine.CacheDelta(req.CacheSince)
	return resp, nil
}

// CacheDelta implements Backend.
func (b *LocalBackend) CacheDelta(_ context.Context, since int64) ([]cdb.CacheEntry, int64, error) {
	entries, seq := b.engine.CacheDelta(since)
	return entries, seq, nil
}

// CacheApply implements Backend.
func (b *LocalBackend) CacheApply(_ context.Context, entries []cdb.CacheEntry) (int, error) {
	return b.engine.ImportVerdicts(entries), nil
}

// Health implements Backend.
func (b *LocalBackend) Health(context.Context) (*HealthResponse, error) {
	executing, queued := b.engine.QueueDepth()
	return &HealthResponse{
		ID:          b.id,
		Fingerprint: b.engine.Fingerprint(),
		Executing:   executing,
		Queued:      queued,
		CacheSeq:    b.engine.CacheSeq(),
	}, nil
}

// HTTPBackend talks to a remote cdbd shard over the /v1/cluster and
// /v1/cache endpoints. Safe for concurrent use.
type HTTPBackend struct {
	id   string
	base string
	hc   *http.Client
}

// NewHTTPBackend returns a backend for shard id at addr (host:port or
// a full http:// URL). hc nil means a default client with no timeout —
// crowd queries are long-lived; deadlines belong on the context.
func NewHTTPBackend(id, addr string, hc *http.Client) *HTTPBackend {
	base := strings.TrimRight(addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	if hc == nil {
		hc = &http.Client{}
	}
	return &HTTPBackend{id: id, base: base, hc: hc}
}

// ID implements Backend.
func (b *HTTPBackend) ID() string { return b.id }

// Exec implements Backend.
func (b *HTTPBackend) Exec(ctx context.Context, req ExecRequest) (*ExecResponse, error) {
	resp, err := b.post(ctx, "/v1/cluster/exec", req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var out ExecResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("cluster: decode exec response from %s: %w", b.id, err)
	}
	return &out, nil
}

// ExecStream implements Backend over NDJSON frames.
func (b *HTTPBackend) ExecStream(ctx context.Context, req ExecRequest, onRound func(cdb.RoundUpdate)) (*ExecResponse, error) {
	resp, err := b.post(ctx, "/v1/cluster/exec/stream", req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var fr StreamFrame
		if err := json.Unmarshal(line, &fr); err != nil {
			return nil, fmt.Errorf("cluster: decode stream frame from %s: %w", b.id, err)
		}
		switch fr.Type {
		case "round":
			if onRound != nil && fr.Round != nil {
				onRound(*fr.Round)
			}
		case "final":
			if fr.Final == nil {
				return nil, fmt.Errorf("cluster: final frame without payload from %s", b.id)
			}
			return fr.Final, nil
		case "error":
			return nil, errorFromPayload(0, fr.Error)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("cluster: stream from %s: %w", b.id, err)
	}
	return nil, fmt.Errorf("cluster: stream from %s ended without a terminal frame", b.id)
}

// CacheDelta implements Backend.
func (b *HTTPBackend) CacheDelta(ctx context.Context, since int64) ([]cdb.CacheEntry, int64, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet,
		b.base+"/v1/cache/delta?since="+strconv.FormatInt(since, 10), nil)
	if err != nil {
		return nil, 0, err
	}
	b.correlate(ctx, hreq)
	resp, err := b.hc.Do(hreq)
	if err != nil {
		return nil, 0, fmt.Errorf("cluster: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, decodeError(resp)
	}
	var out DeltaResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, 0, fmt.Errorf("cluster: decode delta from %s: %w", b.id, err)
	}
	return out.Entries, out.Seq, nil
}

// CacheApply implements Backend.
func (b *HTTPBackend) CacheApply(ctx context.Context, entries []cdb.CacheEntry) (int, error) {
	resp, err := b.post(ctx, "/v1/cache/apply", ApplyRequest{Entries: entries})
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, decodeError(resp)
	}
	var out ApplyResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, fmt.Errorf("cluster: decode apply response from %s: %w", b.id, err)
	}
	return out.Imported, nil
}

// Health implements Backend.
func (b *HTTPBackend) Health(ctx context.Context) (*HealthResponse, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/v1/cluster/health", nil)
	if err != nil {
		return nil, err
	}
	b.correlate(ctx, hreq)
	resp, err := b.hc.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var out HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("cluster: decode health from %s: %w", b.id, err)
	}
	return &out, nil
}

func (b *HTTPBackend) post(ctx context.Context, path string, body any) (*http.Response, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, b.base+path, bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	b.correlate(ctx, hreq)
	resp, err := b.hc.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	return resp, nil
}

// correlate forwards the coordinator's request ID so one query's
// coordinator and shard log lines join on the same key.
func (b *HTTPBackend) correlate(ctx context.Context, hreq *http.Request) {
	if cor := reqid.From(ctx); cor.RequestID != "" {
		hreq.Header.Set(client.HeaderRequestID, cor.RequestID)
	}
}

// decodeError turns a non-2xx shard response into a *client.APIError,
// so errors.Is(err, cdb.ErrOverloaded) etc. work across the hop and
// the coordinator's failover logic does not string-match.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var p client.ErrorPayload
	if err := json.Unmarshal(body, &p); err != nil || p.Code == "" {
		p = client.ErrorPayload{
			Code:    client.CodeInternal,
			Message: fmt.Sprintf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body))),
		}
	}
	return errorFromPayload(resp.StatusCode, &p)
}

func errorFromPayload(status int, p *client.ErrorPayload) error {
	if p == nil {
		p = &client.ErrorPayload{Code: client.CodeInternal, Message: "missing error payload"}
	}
	e := &client.APIError{Status: status, Code: p.Code, Message: p.Message, Near: p.Near, Offset: -1}
	if p.Offset != nil {
		e.Offset = *p.Offset
	}
	if p.RetryAfterMs > 0 {
		e.RetryAfter = time.Duration(p.RetryAfterMs) * time.Millisecond
	}
	return e
}
