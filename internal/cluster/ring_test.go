package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func syntheticKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("join\x1fp\x1fvalue-%d\x1fother-%d", i, i*7)
	}
	return keys
}

// TestRingDistribution bounds placement skew: over 1k component keys
// no shard's share may stray past 2x fair (vnode hashing keeps real
// skew far below that; the bound catches a broken hash or a collapsed
// vnode set).
func TestRingDistribution(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		ids := make([]string, shards)
		for i := range ids {
			ids[i] = fmt.Sprintf("shard-%c", 'a'+i)
		}
		r := NewRing(ids)
		counts := map[string]int{}
		for _, k := range syntheticKeys(1000) {
			counts[r.Owner(k)]++
		}
		if len(counts) != shards {
			t.Fatalf("%d shards: only %d received keys: %v", shards, len(counts), counts)
		}
		fair := 1000 / shards
		for id, n := range counts {
			if n > 2*fair || n < fair/2 {
				t.Fatalf("%d shards: %s owns %d keys (fair %d): %v", shards, id, n, fair, counts)
			}
		}
	}
}

// TestRingDeterministic: same members (any order) produce identical
// placement and failover preference on every node.
func TestRingDeterministic(t *testing.T) {
	a := NewRing([]string{"a", "b", "c"})
	b := NewRing([]string{"c", "a", "b", "a"})
	for _, k := range syntheticKeys(200) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %q: owner %s vs %s", k, a.Owner(k), b.Owner(k))
		}
		if !reflect.DeepEqual(a.Prefer(k), b.Prefer(k)) {
			t.Fatalf("key %q: preference %v vs %v", k, a.Prefer(k), b.Prefer(k))
		}
	}
	if !reflect.DeepEqual(a.Members(), []string{"a", "b", "c"}) {
		t.Fatalf("members = %v", a.Members())
	}
}

// TestRingMinimalMovement: adding or removing one shard may only move
// keys onto (or off) that shard — every key whose owner survives in
// both rings must keep it. This is the consistent-hashing contract
// that keeps shard-local result caches warm across resizes.
func TestRingMinimalMovement(t *testing.T) {
	keys := syntheticKeys(1000)
	three := NewRing([]string{"a", "b", "c"})
	four := NewRing([]string{"a", "b", "c", "d"})

	moved := 0
	for _, k := range keys {
		was, is := three.Owner(k), four.Owner(k)
		if was != is {
			if is != "d" {
				t.Fatalf("key %q moved %s -> %s, not to the new shard", k, was, is)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("new shard received nothing")
	}
	if moved > 1000/2 {
		t.Fatalf("adding one shard moved %d/1000 keys", moved)
	}

	// Removal is the mirror image: only the removed shard's keys move.
	for _, k := range keys {
		if three.Owner(k) != "b" && NewRing([]string{"a", "c"}).Owner(k) != three.Owner(k) {
			t.Fatalf("key %q moved off a surviving shard on removal", k)
		}
	}

	// Failover preference: first entry is the owner; entries are the
	// full member set.
	for _, k := range keys[:50] {
		pref := four.Prefer(k)
		if pref[0] != four.Owner(k) {
			t.Fatalf("key %q: preference %v does not start at owner %s", k, pref, four.Owner(k))
		}
		if len(pref) != 4 {
			t.Fatalf("key %q: preference %v misses members", k, pref)
		}
	}
}
