// Package cluster is the horizontal scale-out layer: a coordinator
// that partitions each statement's tuple graph by connected component
// across a fleet of cdbd shards, scatter-gathers multi-component
// queries with a deterministic merge, and replicates the grow-only
// verdict cache so crowd work paid on one shard is never re-bought on
// another.
//
// The partitioning unit is the connected component (see
// internal/exec/shard.go): components never interact — not through
// optimization, not through enumeration, not through crowd tasks — so
// executing each on its owning shard and merging reproduces the
// single-node answer bit for bit. Verdicts are pure functions of
// (seed, task content, redundancy), which buys the two properties a
// distributed cache usually has to fight for: replication needs no
// invalidation (entries can never disagree), and any shard can execute
// any component (failover and load-spill preserve byte-identity).
package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// vnodesPerShard spreads each shard over the hash space; 64 virtual
// nodes keep the per-shard key share within a few percent of fair at
// realistic fleet sizes (see TestRingDistribution).
const vnodesPerShard = 64

// Ring is a consistent-hash ring over shard ids. Deterministic: the
// same member set yields the same ring on every node, which is what
// lets coordinator and shards derive identical component placement
// from the request alone.
type Ring struct {
	ids    []string
	vnodes []vnode
}

type vnode struct {
	hash uint64
	id   string
}

// hashKey is fnv-64a with a splitmix64 finalizer: raw FNV of short,
// similar strings (vnode labels, canonical task keys) leaves the high
// bits correlated, which shows up as wildly uneven ring arcs; the
// finalizer's avalanche restores a uniform spread.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// NewRing builds a ring over the given shard ids (order-insensitive,
// duplicates collapsed).
func NewRing(ids []string) *Ring {
	seen := map[string]bool{}
	r := &Ring{}
	for _, id := range ids {
		if id == "" || seen[id] {
			continue
		}
		seen[id] = true
		r.ids = append(r.ids, id)
	}
	sort.Strings(r.ids)
	r.vnodes = make([]vnode, 0, len(r.ids)*vnodesPerShard)
	for _, id := range r.ids {
		for i := 0; i < vnodesPerShard; i++ {
			r.vnodes = append(r.vnodes, vnode{hash: hashKey(id + "#" + strconv.Itoa(i)), id: id})
		}
	}
	sort.Slice(r.vnodes, func(i, j int) bool {
		if r.vnodes[i].hash != r.vnodes[j].hash {
			return r.vnodes[i].hash < r.vnodes[j].hash
		}
		return r.vnodes[i].id < r.vnodes[j].id
	})
	return r
}

// Members returns the shard ids, sorted.
func (r *Ring) Members() []string { return append([]string(nil), r.ids...) }

// Size returns the member count.
func (r *Ring) Size() int { return len(r.ids) }

// at locates the first vnode at or clockwise of the key's hash.
func (r *Ring) at(key string) int {
	h := hashKey(key)
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	if i == len(r.vnodes) {
		i = 0
	}
	return i
}

// Owner returns the shard owning key ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	if len(r.vnodes) == 0 {
		return ""
	}
	return r.vnodes[r.at(key)].id
}

// Prefer returns every shard in deterministic failover order for key:
// the owner first, then each distinct shard met walking the ring
// clockwise. Coordinators try the list in order when the owner is down
// or overloaded; execution on any member returns identical bytes, so
// the order only decides who does the work.
func (r *Ring) Prefer(key string) []string {
	if len(r.vnodes) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.ids))
	seen := make(map[string]bool, len(r.ids))
	for i, start := 0, r.at(key); i < len(r.vnodes) && len(out) < len(r.ids); i++ {
		v := r.vnodes[(start+i)%len(r.vnodes)]
		if !seen[v.id] {
			seen[v.id] = true
			out = append(out, v.id)
		}
	}
	return out
}
