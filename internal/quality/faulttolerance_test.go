package quality

import (
	"testing"

	"cdb/internal/stats"
)

// genFixture builds nTasks binary tasks with ground truth and k honest
// answers each from a pool of workers with the given accuracy. Returns
// the tasks and their truths. Deterministic per seed.
func genFixture(seed uint64, nTasks, k, nWorkers int, acc float64) ([]ChoiceTask, []int) {
	rng := stats.NewRNG(seed)
	tasks := make([]ChoiceTask, nTasks)
	truths := make([]int, nTasks)
	for i := range tasks {
		truth := rng.Intn(2)
		truths[i] = truth
		tasks[i].Choices = 2
		seen := map[int]bool{}
		for a := 0; a < k; a++ {
			w := rng.Intn(nWorkers)
			for seen[w] {
				w = rng.Intn(nWorkers)
			}
			seen[w] = true
			choice := truth
			if rng.Float64() > acc {
				choice = 1 - truth
			}
			tasks[i].Answers = append(tasks[i].Answers, ChoiceAnswer{Worker: w, Choice: choice})
		}
	}
	return tasks, truths
}

// corruptTasks applies the transport's fault model at the aggregation
// layer: a rate fraction of answers duplicated (the dedup bug this
// guards against would append them twice) and a rate fraction
// corrupted into coin-flip verdicts. Returns a deep copy.
func corruptTasks(seed uint64, tasks []ChoiceTask, dupRate, corruptRate float64) []ChoiceTask {
	rng := stats.NewRNG(seed ^ 0xdead)
	out := make([]ChoiceTask, len(tasks))
	for i, t := range tasks {
		out[i].Choices = t.Choices
		for _, a := range t.Answers {
			if rng.Float64() < corruptRate {
				a.Choice = rng.Intn(2)
			}
			out[i].Answers = append(out[i].Answers, a)
			if rng.Float64() < dupRate {
				// A duplicated delivery that slipped past dedup would look
				// exactly like this: the same worker's opinion twice.
				out[i].Answers = append(out[i].Answers, a)
			}
		}
	}
	return out
}

// verdictsOf runs EM + Bayesian voting (Eq. 2) and returns per-task
// verdicts.
func verdictsOf(tasks []ChoiceTask) []int {
	m := NewWorkerModel()
	post := m.InferEM(tasks, 50)
	out := make([]int, len(tasks))
	for i := range post {
		out[i] = EstimateTruth(post[i])
	}
	return out
}

// TestInferenceRobustToBoundedFaults is the quality-layer property
// behind the executor's graceful-degradation claim: duplicate and
// corruption rates at or below 10% leave EM truth inference with
// Bayesian voting (Eq. 2) nearly unmoved on a seeded fixture — at
// redundancy 5 a corrupted minority cannot outvote an honest majority
// except on already-contested 3-2 tasks, so at most a few percent of
// verdicts flip and accuracy against ground truth degrades by a
// bounded handful of tasks, never collapses.
func TestInferenceRobustToBoundedFaults(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		tasks, truths := genFixture(seed, 200, 5, 40, 0.85)
		base := verdictsOf(tasks)

		baseCorrect := 0
		for i := range base {
			if base[i] == truths[i] {
				baseCorrect++
			}
		}
		if baseCorrect < 180 {
			t.Fatalf("seed %d: fixture too noisy, %d/200 correct before faults", seed, baseCorrect)
		}

		for _, rate := range []float64{0.05, 0.1} {
			faulty := verdictsOf(corruptTasks(seed, tasks, rate, rate))
			flips, faultyCorrect := 0, 0
			for i := range base {
				if faulty[i] != base[i] {
					flips++
				}
				if faulty[i] == truths[i] {
					faultyCorrect++
				}
			}
			// ≤10% faults may flip at most 7% of verdicts (empirically
			// ≤5.5% on these seeds; the flips concentrate on tasks whose
			// clean vote was already 3-2).
			if flips > 14 {
				t.Errorf("seed %d rate %v: %d/200 verdicts flipped by bounded faults", seed, rate, flips)
			}
			// Accuracy against ground truth must not collapse: a ≤10%
			// fault rate costs at most 6 points on this fixture.
			if faultyCorrect < baseCorrect-12 {
				t.Errorf("seed %d rate %v: accuracy fell %d/200 → %d/200 under bounded faults",
					seed, rate, baseCorrect, faultyCorrect)
			}
		}
	}
}

// TestDuplicatesAloneNeverFlipConfidentMajorities pins the sharper
// invariant for pure duplication: when every clean majority is
// unanimous, re-delivering answers (at any rate up to 1.0) cannot flip
// any verdict — duplication only rescales evidence that already
// agrees.
func TestDuplicatesAloneNeverFlipConfidentMajorities(t *testing.T) {
	for _, seed := range []uint64{11, 12, 13} {
		tasks, _ := genFixture(seed, 100, 5, 30, 1.0) // perfect workers: unanimous tasks
		base := verdictsOf(tasks)
		for _, rate := range []float64{0.1, 0.5, 1.0} {
			faulty := verdictsOf(corruptTasks(seed, tasks, rate, 0))
			for i := range base {
				if faulty[i] != base[i] {
					t.Fatalf("seed %d dup-rate %v: duplication flipped unanimous task %d", seed, rate, i)
				}
			}
		}
	}
}
