// Package quality implements CDB's quality control (§5.3): truth
// inference and task assignment for single-choice, multi-choice,
// fill-in-blank and collection tasks.
//
// Truth inference models each worker as an accuracy q_w ∈ [0,1],
// estimated by Expectation-Maximization over all answers, and derives
// each task's truth by Bayesian voting (Eq. 2). Fill-in-blank truth is
// the "pivot" answer maximizing aggregated similarity to the others.
// Task assignment scores single-choice tasks by the expected entropy
// reduction of one more answer (Eq. 3), fill-in-blank tasks by answer
// consistency (Eq. 4) and collection tasks by a completeness score
// backed by a Chao92 cardinality estimate.
package quality

import (
	"math"
	"runtime"
	"sync"

	"cdb/internal/obs"
)

// EMWorkers caps the goroutines used by InferEM's E-step; 0 (the
// default) means GOMAXPROCS — the same convention as sim.JoinWorkers.
// Posteriors are identical for any setting: each task's posterior is
// computed independently and written to its own slot (an ordered
// reduction), and the M-step runs serially over tasks in index order.
var EMWorkers = 0

// emParallelThreshold is the task-count below which sharding the E-step
// is not worth the goroutine overhead. A variable so tests can force
// the parallel path on small histories.
var emParallelThreshold = 256

// eStep computes every task's Bayesian posterior into posteriors,
// sharding across EMWorkers goroutines when the history is large. The
// worker-quality map is read-only for the duration of the E-step (the
// M-step mutates it strictly afterwards), so concurrent reads are safe.
func (m *WorkerModel) eStep(tasks []ChoiceTask, posteriors [][]float64) {
	workers := EMWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 || len(tasks) < emParallelThreshold {
		for i, t := range tasks {
			posteriors[i] = BayesianPosterior(t, m.Quality)
		}
		return
	}
	chunk := (len(tasks) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(tasks) {
			break
		}
		hi := lo + chunk
		if hi > len(tasks) {
			hi = len(tasks)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				posteriors[i] = BayesianPosterior(tasks[i], m.Quality)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// Truth-inference metrics: EM invocations, how many iterations each
// took to converge, and the task-history size it ran over.
var (
	mEMRuns  = obs.Default.Counter("cdb_quality_em_runs_total")
	mEMIters = obs.Default.Counter("cdb_quality_em_iters_total")
	mEMTasks = obs.Default.Histogram("cdb_quality_em_tasks_per_run", obs.SizeBuckets)
)

// ChoiceAnswer is one worker's judgement on a choice task.
type ChoiceAnswer struct {
	Worker int
	Choice int
}

// ChoiceTask is a single-choice task instance: ℓ options and the
// answers collected so far.
type ChoiceTask struct {
	Choices int
	Answers []ChoiceAnswer
}

// MajorityVote aggregates by plurality; ties break toward the lowest
// choice index for determinism. It returns -1 for an empty answer set.
func MajorityVote(t ChoiceTask) int {
	if len(t.Answers) == 0 {
		return -1
	}
	counts := make([]int, t.Choices)
	for _, a := range t.Answers {
		counts[a.Choice]++
	}
	best := 0
	for i, c := range counts {
		if c > counts[best] {
			best = i
		}
	}
	return best
}

// BayesianPosterior computes Eq. 2: the probability of each choice
// being the truth given the answers and each worker's quality. Uses
// log-space accumulation so many answers do not underflow. A task with
// no answers yields the uniform distribution.
func BayesianPosterior(t ChoiceTask, qualityOf func(worker int) float64) []float64 {
	l := t.Choices
	logp := make([]float64, l)
	for _, a := range t.Answers {
		q := clampQ(qualityOf(a.Worker))
		for i := 0; i < l; i++ {
			if i == a.Choice {
				logp[i] += math.Log(q)
			} else {
				logp[i] += math.Log((1 - q) / float64(l-1))
			}
		}
	}
	return normalizeLog(logp)
}

func clampQ(q float64) float64 {
	// Guard the log terms: a "perfect" or "useless" worker estimate
	// would otherwise collapse the posterior.
	if q < 0.01 {
		return 0.01
	}
	if q > 0.99 {
		return 0.99
	}
	return q
}

func normalizeLog(logp []float64) []float64 {
	maxLog := math.Inf(-1)
	for _, v := range logp {
		if v > maxLog {
			maxLog = v
		}
	}
	out := make([]float64, len(logp))
	var sum float64
	for i, v := range logp {
		out[i] = math.Exp(v - maxLog)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// WorkerModel holds per-worker quality estimates persisted across
// rounds (CDB's worker metadata store). The zero value is not usable;
// construct with NewWorkerModel.
type WorkerModel struct {
	// Default is the prior quality for unseen workers (the paper uses
	// 0.7).
	Default float64
	// PriorStrength is the pseudo-count weight of the prior in the EM
	// M-step; it keeps a worker's estimate from collapsing to 0 or 1
	// after a handful of answers.
	PriorStrength float64
	qual          map[int]float64
}

// NewWorkerModel returns a model with the paper's default prior.
func NewWorkerModel() *WorkerModel {
	return &WorkerModel{Default: 0.7, PriorStrength: 8, qual: map[int]float64{}}
}

// Quality returns the current estimate for a worker.
func (m *WorkerModel) Quality(worker int) float64 {
	if q, ok := m.qual[worker]; ok {
		return q
	}
	return m.Default
}

// Set records a quality estimate (used by EM and by golden-task
// bootstrapping).
func (m *WorkerModel) Set(worker int, q float64) { m.qual[worker] = q }

// CalibrateGolden initializes a worker's quality from golden tasks
// (tasks with known ground truth answered on first arrival, the
// bootstrap the paper's §E describes): a prior-smoothed fraction of
// correct answers.
func (m *WorkerModel) CalibrateGolden(worker, correct, total int) {
	if total <= 0 {
		return
	}
	q := (float64(correct) + m.Default*m.PriorStrength) / (float64(total) + m.PriorStrength)
	m.Set(worker, clampQ(q))
}

// InferEM runs Expectation-Maximization over the given single-choice
// tasks: alternate Bayesian posteriors (E) and quality re-estimates
// (M) until convergence or maxIters. It updates the model in place and
// returns the final posterior per task.
func (m *WorkerModel) InferEM(tasks []ChoiceTask, maxIters int) [][]float64 {
	if maxIters <= 0 {
		maxIters = 50
	}
	mEMRuns.Inc()
	mEMTasks.Observe(float64(len(tasks)))
	posteriors := make([][]float64, len(tasks))
	for iter := 0; iter < maxIters; iter++ {
		mEMIters.Inc()
		// E-step (sharded across EMWorkers, deterministic).
		m.eStep(tasks, posteriors)
		// M-step: expected fraction of correct answers per worker.
		sum := map[int]float64{}
		cnt := map[int]int{}
		for i, t := range tasks {
			for _, a := range t.Answers {
				sum[a.Worker] += posteriors[i][a.Choice]
				cnt[a.Worker]++
			}
		}
		maxDelta := 0.0
		for w, c := range cnt {
			// Beta-prior smoothing toward the default quality.
			newQ := (sum[w] + m.Default*m.PriorStrength) / (float64(c) + m.PriorStrength)
			if d := math.Abs(newQ - m.Quality(w)); d > maxDelta {
				maxDelta = d
			}
			m.Set(w, newQ)
		}
		if maxDelta < 1e-6 {
			break
		}
	}
	m.eStep(tasks, posteriors)
	return posteriors
}

// EstimateTruth returns the argmax choice of a posterior, -1 if empty.
func EstimateTruth(posterior []float64) int {
	if len(posterior) == 0 {
		return -1
	}
	best := 0
	for i, p := range posterior {
		if p > posterior[best] {
			best = i
		}
	}
	return best
}

// MultiAnswer is one worker's judgement on a multi-choice task: a
// subset selection over the options.
type MultiAnswer struct {
	Worker   int
	Selected []bool
}

// DecomposeMulti turns a multi-choice task with ℓ options into ℓ
// binary single-choice tasks ("is option i true?"), the paper's
// reduction for both inference and assignment.
func DecomposeMulti(options int, answers []MultiAnswer) []ChoiceTask {
	out := make([]ChoiceTask, options)
	for i := range out {
		out[i].Choices = 2
		for _, a := range answers {
			choice := 0
			if i < len(a.Selected) && a.Selected[i] {
				choice = 1
			}
			out[i].Answers = append(out[i].Answers, ChoiceAnswer{Worker: a.Worker, Choice: choice})
		}
	}
	return out
}

// FillAnswer is one worker's free-text answer.
type FillAnswer struct {
	Worker int
	Text   string
}

// PivotAnswer implements the fill-in-blank truth estimate: the answer
// with the highest aggregated similarity to all other answers. Returns
// "" for no answers. simFn must be symmetric in [0,1].
func PivotAnswer(answers []FillAnswer, simFn func(a, b string) float64) string {
	if len(answers) == 0 {
		return ""
	}
	best, bestScore := 0, math.Inf(-1)
	for i := range answers {
		var s float64
		for j := range answers {
			if i == j {
				continue
			}
			s += simFn(answers[i].Text, answers[j].Text)
		}
		if s > bestScore {
			best, bestScore = i, s
		}
	}
	return answers[best].Text
}
