package quality

// Calibrator learns a mapping from string similarity to matching
// probability from labelled pairs — the "more sophisticated methods to
// transform similarities to probabilities based on a training set"
// that §4.1 cites (Whang et al.). CDB uses it adaptively: every crowd
// answer is a labelled pair, so the optimizer can re-weight the
// remaining edges mid-query with probabilities grounded in this
// query's own data instead of raw similarity.
//
// The estimate is a binned frequency with Laplace smoothing, made
// monotone non-decreasing by pool-adjacent-violators (isotonic)
// regression: higher similarity may never be assigned lower matching
// probability.
type Calibrator struct {
	bins  int
	count []int
	match []int
}

// NewCalibrator creates a calibrator with the given number of
// similarity bins (default 10 when n <= 0).
func NewCalibrator(n int) *Calibrator {
	if n <= 0 {
		n = 10
	}
	return &Calibrator{bins: n, count: make([]int, n), match: make([]int, n)}
}

func (c *Calibrator) binOf(sim float64) int {
	if sim < 0 {
		sim = 0
	}
	if sim >= 1 {
		return c.bins - 1
	}
	return int(sim * float64(c.bins))
}

// Observe records one labelled pair.
func (c *Calibrator) Observe(sim float64, matched bool) {
	b := c.binOf(sim)
	c.count[b]++
	if matched {
		c.match[b]++
	}
}

// Observations reports the number of labelled pairs seen.
func (c *Calibrator) Observations() int {
	total := 0
	for _, n := range c.count {
		total += n
	}
	return total
}

// Fitted reports whether enough evidence has accumulated for the
// calibrated estimates to be preferable to raw similarity (at least
// 20 observations spread over 2+ bins).
func (c *Calibrator) Fitted() bool {
	nonEmpty := 0
	for _, n := range c.count {
		if n > 0 {
			nonEmpty++
		}
	}
	return c.Observations() >= 20 && nonEmpty >= 2
}

// Prob returns the calibrated matching probability for a similarity
// value. Before the calibrator is fitted it returns the raw similarity
// unchanged (the paper's default assumption).
func (c *Calibrator) Prob(sim float64) float64 {
	if !c.Fitted() {
		return sim
	}
	iso := c.isotonic()
	return iso[c.binOf(sim)]
}

// Curve returns the calibrated probability per bin (diagnostics).
func (c *Calibrator) Curve() []float64 {
	return c.isotonic()
}

// isotonic computes Laplace-smoothed bin rates and applies
// pool-adjacent-violators to enforce monotonicity. Empty bins borrow
// the bin-centre similarity as their prior mean.
func (c *Calibrator) isotonic() []float64 {
	rate := make([]float64, c.bins)
	weight := make([]float64, c.bins)
	for b := 0; b < c.bins; b++ {
		centre := (float64(b) + 0.5) / float64(c.bins)
		// Two pseudo-observations at the bin centre keep empty and tiny
		// bins near the identity prior.
		rate[b] = (float64(c.match[b]) + 2*centre) / (float64(c.count[b]) + 2)
		weight[b] = float64(c.count[b]) + 2
	}
	// Pool adjacent violators.
	type block struct {
		sum, w float64
		n      int
	}
	var stack []block
	for b := 0; b < c.bins; b++ {
		cur := block{sum: rate[b] * weight[b], w: weight[b], n: 1}
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			if top.sum/top.w <= cur.sum/cur.w {
				break
			}
			cur.sum += top.sum
			cur.w += top.w
			cur.n += top.n
			stack = stack[:len(stack)-1]
		}
		stack = append(stack, cur)
	}
	out := make([]float64, 0, c.bins)
	for _, blk := range stack {
		v := blk.sum / blk.w
		for i := 0; i < blk.n; i++ {
			out = append(out, v)
		}
	}
	return out
}
