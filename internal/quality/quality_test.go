package quality

import (
	"math"
	"testing"

	"cdb/internal/sim"
	"cdb/internal/stats"
)

func TestMajorityVote(t *testing.T) {
	task := ChoiceTask{Choices: 2, Answers: []ChoiceAnswer{
		{Worker: 0, Choice: 1}, {Worker: 1, Choice: 1}, {Worker: 2, Choice: 0},
	}}
	if MajorityVote(task) != 1 {
		t.Fatal("majority should be 1")
	}
	if MajorityVote(ChoiceTask{Choices: 2}) != -1 {
		t.Fatal("empty task should vote -1")
	}
	// Tie breaks to lower index.
	tie := ChoiceTask{Choices: 2, Answers: []ChoiceAnswer{{Worker: 0, Choice: 1}, {Worker: 1, Choice: 0}}}
	if MajorityVote(tie) != 0 {
		t.Fatal("tie should break low")
	}
}

func TestBayesianPosteriorUniformPrior(t *testing.T) {
	p := BayesianPosterior(ChoiceTask{Choices: 3}, func(int) float64 { return 0.8 })
	for _, v := range p {
		if math.Abs(v-1.0/3) > 1e-12 {
			t.Fatalf("no-answer posterior should be uniform: %v", p)
		}
	}
}

func TestBayesianPosteriorWeighsQuality(t *testing.T) {
	// One accurate worker says 0, two poor workers say 1: the accurate
	// one should win.
	task := ChoiceTask{Choices: 2, Answers: []ChoiceAnswer{
		{Worker: 0, Choice: 0}, {Worker: 1, Choice: 1}, {Worker: 2, Choice: 1},
	}}
	qual := map[int]float64{0: 0.95, 1: 0.55, 2: 0.55}
	p := BayesianPosterior(task, func(w int) float64 { return qual[w] })
	if p[0] <= p[1] {
		t.Fatalf("high-quality dissent should dominate: %v", p)
	}
	// Paper's Eq. 2 closed form for this case.
	num0 := 0.95 * 0.45 * 0.45
	num1 := 0.05 * 0.55 * 0.55
	want0 := num0 / (num0 + num1)
	if math.Abs(p[0]-want0) > 1e-9 {
		t.Fatalf("posterior = %v, want %v", p[0], want0)
	}
}

func TestBayesianPosteriorManyAnswersNoUnderflow(t *testing.T) {
	task := ChoiceTask{Choices: 2}
	for i := 0; i < 2000; i++ {
		task.Answers = append(task.Answers, ChoiceAnswer{Worker: i, Choice: 1})
	}
	p := BayesianPosterior(task, func(int) float64 { return 0.7 })
	if math.IsNaN(p[0]) || math.IsNaN(p[1]) || p[1] < 0.999 {
		t.Fatalf("posterior unstable: %v", p)
	}
}

func TestInferEMRecoversQualities(t *testing.T) {
	// Simulate 3 good workers (0.9) and 2 bad (0.55) over 300 binary
	// tasks; EM should estimate good > bad and get most truths right.
	rng := stats.NewRNG(42)
	pool := []float64{0.9, 0.9, 0.9, 0.55, 0.55}
	const tasks = 300
	truth := make([]int, tasks)
	taskList := make([]ChoiceTask, tasks)
	for i := 0; i < tasks; i++ {
		truth[i] = rng.Intn(2)
		taskList[i].Choices = 2
		for w, acc := range pool {
			choice := truth[i]
			if !rng.Bool(acc) {
				choice = 1 - choice
			}
			taskList[i].Answers = append(taskList[i].Answers, ChoiceAnswer{Worker: w, Choice: choice})
		}
	}
	m := NewWorkerModel()
	post := m.InferEM(taskList, 50)
	for w := 0; w < 3; w++ {
		if m.Quality(w) < 0.8 {
			t.Fatalf("good worker %d estimated %v", w, m.Quality(w))
		}
	}
	for w := 3; w < 5; w++ {
		if m.Quality(w) > 0.75 {
			t.Fatalf("bad worker %d estimated %v", w, m.Quality(w))
		}
	}
	correct := 0
	for i := range taskList {
		if EstimateTruth(post[i]) == truth[i] {
			correct++
		}
	}
	if correct < tasks*95/100 {
		t.Fatalf("EM truth accuracy %d/%d too low", correct, tasks)
	}
}

func TestInferEMBeatsMajorityVoting(t *testing.T) {
	// A reliable minority vs an unreliable majority: EM should beat MV.
	rng := stats.NewRNG(7)
	pool := []float64{0.95, 0.95, 0.52, 0.52, 0.52}
	const tasks = 400
	truth := make([]int, tasks)
	taskList := make([]ChoiceTask, tasks)
	for i := 0; i < tasks; i++ {
		truth[i] = rng.Intn(2)
		taskList[i].Choices = 2
		for w, acc := range pool {
			choice := truth[i]
			if !rng.Bool(acc) {
				choice = 1 - choice
			}
			taskList[i].Answers = append(taskList[i].Answers, ChoiceAnswer{Worker: w, Choice: choice})
		}
	}
	m := NewWorkerModel()
	post := m.InferEM(taskList, 50)
	emCorrect, mvCorrect := 0, 0
	for i := range taskList {
		if EstimateTruth(post[i]) == truth[i] {
			emCorrect++
		}
		if MajorityVote(taskList[i]) == truth[i] {
			mvCorrect++
		}
	}
	if emCorrect <= mvCorrect {
		t.Fatalf("EM (%d) should beat MV (%d) with a reliable minority", emCorrect, mvCorrect)
	}
}

func TestWorkerModelDefaults(t *testing.T) {
	m := NewWorkerModel()
	if m.Quality(99) != 0.7 {
		t.Fatalf("default quality = %v", m.Quality(99))
	}
	m.Set(99, 0.9)
	if m.Quality(99) != 0.9 {
		t.Fatal("Set not persisted")
	}
}

func TestEstimateTruth(t *testing.T) {
	if EstimateTruth(nil) != -1 {
		t.Fatal("empty posterior should be -1")
	}
	if EstimateTruth([]float64{0.2, 0.5, 0.3}) != 1 {
		t.Fatal("argmax broken")
	}
}

func TestDecomposeMulti(t *testing.T) {
	answers := []MultiAnswer{
		{Worker: 0, Selected: []bool{true, false, true}},
		{Worker: 1, Selected: []bool{true, true, false}},
	}
	singles := DecomposeMulti(3, answers)
	if len(singles) != 3 {
		t.Fatalf("decomposed into %d", len(singles))
	}
	if singles[0].Answers[0].Choice != 1 || singles[0].Answers[1].Choice != 1 {
		t.Fatal("option 0 should be yes/yes")
	}
	if singles[1].Answers[0].Choice != 0 || singles[1].Answers[1].Choice != 1 {
		t.Fatal("option 1 should be no/yes")
	}
}

func TestPivotAnswer(t *testing.T) {
	simFn := func(a, b string) float64 { return sim.Jaccard2Gram(a, b) }
	answers := []FillAnswer{
		{Worker: 0, Text: "massachusetts"},
		{Worker: 1, Text: "massachusets"},
		{Worker: 2, Text: "california"},
	}
	if got := PivotAnswer(answers, simFn); got != "massachusetts" && got != "massachusets" {
		t.Fatalf("pivot = %q", got)
	}
	if PivotAnswer(nil, simFn) != "" {
		t.Fatal("empty answers should yield empty pivot")
	}
}

func TestChoiceGainPrefersUncertainTasks(t *testing.T) {
	certain := []float64{0.99, 0.01}
	uncertain := []float64{0.5, 0.5}
	if ChoiceGain(uncertain, 0.8) <= ChoiceGain(certain, 0.8) {
		t.Fatal("uncertain task should promise more gain")
	}
	if ChoiceGain([]float64{1}, 0.8) != 0 {
		t.Fatal("single-choice degenerate gain should be 0")
	}
}

func TestChoiceGainHigherQualityHelpsMore(t *testing.T) {
	p := []float64{0.5, 0.5}
	if ChoiceGain(p, 0.95) <= ChoiceGain(p, 0.6) {
		t.Fatal("a better worker should reduce entropy more")
	}
	// A coin-flip worker (q=0.5 on binary) provides no information.
	if g := ChoiceGain(p, 0.5); math.Abs(g) > 1e-9 {
		t.Fatalf("uninformative worker gain = %v", g)
	}
}

func TestFillConsistency(t *testing.T) {
	simFn := func(a, b string) float64 {
		if a == b {
			return 1
		}
		return 0
	}
	same := []FillAnswer{{Text: "x"}, {Text: "x"}, {Text: "x"}}
	if c := FillConsistency(same, simFn); c != 1 {
		t.Fatalf("identical answers consistency = %v", c)
	}
	mixed := []FillAnswer{{Text: "x"}, {Text: "y"}}
	if c := FillConsistency(mixed, simFn); c != 0 {
		t.Fatalf("disjoint answers consistency = %v", c)
	}
	if FillConsistency([]FillAnswer{{Text: "x"}}, simFn) != 0 {
		t.Fatal("single answer consistency should be 0")
	}
}

func TestChao92(t *testing.T) {
	if Chao92(map[string]int{}) != 0 {
		t.Fatal("empty counts should be 0")
	}
	// All singletons: no coverage; fall back to 2M.
	if got := Chao92(map[string]int{"a": 1, "b": 1}); got != 4 {
		t.Fatalf("all-singleton estimate = %v, want 4", got)
	}
	// Heavy duplication: estimate close to observed M.
	got := Chao92(map[string]int{"a": 5, "b": 5, "c": 5})
	if math.Abs(got-3) > 1e-9 {
		t.Fatalf("saturated estimate = %v, want 3", got)
	}
}

func TestCompletenessScore(t *testing.T) {
	if CompletenessScore(50, 100) != 0.5 {
		t.Fatal("half-complete should be 0.5")
	}
	if CompletenessScore(100, 100) != 0 {
		t.Fatal("complete should be 0")
	}
	if CompletenessScore(10, 0) != 0 {
		t.Fatal("no estimate should be 0")
	}
}

func TestAssignChoice(t *testing.T) {
	posteriors := [][]float64{
		{0.99, 0.01}, // near certain
		{0.5, 0.5},   // maximally uncertain
		{0.7, 0.3},
	}
	got := AssignChoice(posteriors, nil, 0.8, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("assignment = %v, want [1 2]", got)
	}
	// Closed tasks are skipped.
	got = AssignChoice(posteriors, func(i int) bool { return i != 1 }, 0.8, 1)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("assignment with closed task = %v", got)
	}
	if got := AssignChoice(nil, nil, 0.8, 3); len(got) != 0 {
		t.Fatalf("empty assignment = %v", got)
	}
}

func TestAssignFill(t *testing.T) {
	simFn := func(a, b string) float64 {
		if a == b {
			return 1
		}
		return 0
	}
	sets := [][]FillAnswer{
		{{Text: "x"}, {Text: "x"}}, // consistent
		{{Text: "x"}, {Text: "y"}}, // inconsistent: most in need
	}
	got := AssignFill(sets, nil, simFn, 1)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("fill assignment = %v, want [1]", got)
	}
}

func TestConfidentEnough(t *testing.T) {
	if !ConfidentEnough([]float64{0.97, 0.03}, 0.95) {
		t.Fatal("peaked posterior should be confident")
	}
	if ConfidentEnough([]float64{0.6, 0.4}, 0.95) {
		t.Fatal("flat posterior should not be confident")
	}
	if ConfidentEnough(nil, 0.9) {
		t.Fatal("empty posterior cannot be confident")
	}
}

func TestCalibrateGolden(t *testing.T) {
	m := NewWorkerModel()
	m.CalibrateGolden(1, 10, 10) // perfect on golden tasks
	if m.Quality(1) <= 0.8 {
		t.Fatalf("golden-perfect worker quality = %v", m.Quality(1))
	}
	m.CalibrateGolden(2, 0, 10) // hopeless on golden tasks
	if m.Quality(2) >= 0.5 {
		t.Fatalf("golden-hopeless worker quality = %v", m.Quality(2))
	}
	m.CalibrateGolden(3, 5, 0) // no golden tasks: unchanged
	if m.Quality(3) != m.Default {
		t.Fatalf("no-golden worker quality = %v", m.Quality(3))
	}
	// Calibration stays a valid probability under smoothing.
	m.CalibrateGolden(4, 1000, 1000)
	if q := m.Quality(4); q > 0.99 {
		t.Fatalf("calibrated quality escaped clamp: %v", q)
	}
}

func TestCalibratorUnfittedIsIdentity(t *testing.T) {
	c := NewCalibrator(10)
	if c.Prob(0.42) != 0.42 {
		t.Fatal("unfitted calibrator must return raw similarity")
	}
	c.Observe(0.5, true)
	if c.Fitted() {
		t.Fatal("one observation should not count as fitted")
	}
}

func TestCalibratorLearnsSharpThreshold(t *testing.T) {
	// Ground truth: everything above 0.6 matches, below never does.
	c := NewCalibrator(10)
	rng := stats.NewRNG(5)
	for i := 0; i < 500; i++ {
		s := rng.Float64()
		c.Observe(s, s > 0.6)
	}
	if !c.Fitted() {
		t.Fatal("should be fitted after 500 observations")
	}
	if lo := c.Prob(0.3); lo > 0.2 {
		t.Fatalf("P(match | sim=0.3) = %v, want near 0", lo)
	}
	if hi := c.Prob(0.9); hi < 0.8 {
		t.Fatalf("P(match | sim=0.9) = %v, want near 1", hi)
	}
}

func TestCalibratorMonotone(t *testing.T) {
	c := NewCalibrator(10)
	rng := stats.NewRNG(9)
	// Noisy, non-monotone raw rates.
	for i := 0; i < 300; i++ {
		s := rng.Float64()
		c.Observe(s, rng.Bool(0.2+0.6*s))
	}
	curve := c.Curve()
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1]-1e-12 {
			t.Fatalf("isotonic violated at bin %d: %v", i, curve)
		}
	}
	for _, v := range curve {
		if v < 0 || v > 1 {
			t.Fatalf("probability out of range: %v", curve)
		}
	}
}

func TestCalibratorBinEdges(t *testing.T) {
	c := NewCalibrator(4)
	c.Observe(-0.5, false) // clamped into bin 0
	c.Observe(1.5, true)   // clamped into last bin
	if c.Observations() != 2 {
		t.Fatalf("observations = %d", c.Observations())
	}
	if NewCalibrator(0).bins != 10 {
		t.Fatal("default bins should be 10")
	}
}

// TestInferEMParallelDeterministic forces the sharded E-step and checks
// that posteriors and the worker model are bit-identical to the serial
// run for every worker count.
func TestInferEMParallelDeterministic(t *testing.T) {
	oldW, oldT := EMWorkers, emParallelThreshold
	defer func() { EMWorkers, emParallelThreshold = oldW, oldT }()
	emParallelThreshold = 1

	rng := stats.NewRNG(17)
	pool := []float64{0.92, 0.85, 0.7, 0.6, 0.55}
	taskList := make([]ChoiceTask, 200)
	for i := range taskList {
		truth := rng.Intn(2)
		taskList[i].Choices = 2
		for w, acc := range pool {
			choice := truth
			if !rng.Bool(acc) {
				choice = 1 - choice
			}
			taskList[i].Answers = append(taskList[i].Answers, ChoiceAnswer{Worker: w, Choice: choice})
		}
	}

	EMWorkers = 1
	serial := NewWorkerModel()
	want := serial.InferEM(taskList, 50)
	for _, workers := range []int{2, 3, 8} {
		EMWorkers = workers
		m := NewWorkerModel()
		got := m.InferEM(taskList, 50)
		for i := range want {
			for c := range want[i] {
				if got[i][c] != want[i][c] {
					t.Fatalf("workers=%d: posterior[%d][%d] = %v, serial %v",
						workers, i, c, got[i][c], want[i][c])
				}
			}
		}
		for w := range pool {
			if m.Quality(w) != serial.Quality(w) {
				t.Fatalf("workers=%d: quality[%d] = %v, serial %v",
					workers, w, m.Quality(w), serial.Quality(w))
			}
		}
	}
}
