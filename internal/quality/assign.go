package quality

import (
	"math"

	"cdb/internal/stats"
)

// ChoiceGain computes Eq. 3: the expected entropy reduction of task t
// (current posterior p over ℓ choices) if a worker of quality q
// answers it. Larger is better; the assignment picks argmax.
func ChoiceGain(p []float64, q float64) float64 {
	l := len(p)
	if l < 2 {
		return 0
	}
	q = clampQ(q)
	h := stats.Entropy(p)
	expected := 0.0
	pPrime := make([]float64, l)
	for i := 0; i < l; i++ {
		// Probability the worker answers choice i.
		pi := p[i]*q + (1-p[i])*(1-q)/float64(l-1)
		if pi <= 0 {
			continue
		}
		// Posterior after observing answer i.
		for j := 0; j < l; j++ {
			if j == i {
				pPrime[j] = p[j] * q
			} else {
				pPrime[j] = p[j] * (1 - q) / float64(l-1)
			}
		}
		norm := 0.0
		for _, v := range pPrime {
			norm += v
		}
		if norm <= 0 {
			continue
		}
		for j := range pPrime {
			pPrime[j] /= norm
		}
		expected += pi * stats.Entropy(pPrime)
	}
	return h - expected
}

// FillConsistency computes Eq. 4: the mean pairwise similarity of a
// fill-in-blank task's answers. Tasks with fewer than two answers have
// zero consistency (maximally in need of more answers).
func FillConsistency(answers []FillAnswer, simFn func(a, b string) float64) float64 {
	n := len(answers)
	if n < 2 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sum += simFn(answers[i].Text, answers[j].Text)
		}
	}
	pairs := float64(n*(n-1)) / 2
	return sum / pairs
}

// Chao92 estimates the total population size from capture frequencies:
// counts maps each distinct observed item to how many times it was
// contributed. The estimator is N̂ = M / (1 - f1/n) · (1 + γ² f1/(n-f1))
// simplified to the abundance-coverage form commonly used for crowd
// enumeration; with no duplicates observed it falls back to 2M (we
// clearly have not saturated).
func Chao92(counts map[string]int) float64 {
	m := len(counts)
	if m == 0 {
		return 0
	}
	n, f1 := 0, 0
	for _, c := range counts {
		n += c
		if c == 1 {
			f1++
		}
	}
	if f1 == n {
		// Every observation unique: no coverage signal yet.
		return 2 * float64(m)
	}
	coverage := 1 - float64(f1)/float64(n)
	return float64(m) / coverage
}

// CompletenessScore computes (N̂−M)/N̂: how far a collection task is
// from complete. Assignment favours the LEAST complete tasks.
func CompletenessScore(distinct int, estimated float64) float64 {
	if estimated <= 0 || float64(distinct) >= estimated {
		return 0
	}
	return (estimated - float64(distinct)) / estimated
}

// AssignChoice picks, for an arriving worker of quality q, the indices
// of the k open tasks with the highest expected quality improvement
// (Eq. 3). posteriors[i] is the current distribution of task i; open
// reports whether the task may still receive answers. Ties break to
// the lower index.
func AssignChoice(posteriors [][]float64, open func(task int) bool, q float64, k int) []int {
	type scored struct {
		task int
		gain float64
	}
	var all []scored
	for i, p := range posteriors {
		if open != nil && !open(i) {
			continue
		}
		all = append(all, scored{task: i, gain: ChoiceGain(p, q)})
	}
	// Partial selection sort for top-k (k is tiny).
	if k > len(all) {
		k = len(all)
	}
	out := make([]int, 0, k)
	used := make(map[int]bool, k)
	for len(out) < k {
		best := -1
		for i, s := range all {
			if used[i] {
				continue
			}
			if best < 0 || s.gain > all[best].gain ||
				(s.gain == all[best].gain && s.task < all[best].task) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		used[best] = true
		out = append(out, all[best].task)
	}
	return out
}

// AssignFill picks the k fill-in-blank tasks with the LEAST
// consistency (Eq. 4).
func AssignFill(answerSets [][]FillAnswer, open func(task int) bool,
	simFn func(a, b string) float64, k int) []int {

	type scored struct {
		task int
		c    float64
	}
	var all []scored
	for i, as := range answerSets {
		if open != nil && !open(i) {
			continue
		}
		all = append(all, scored{task: i, c: FillConsistency(as, simFn)})
	}
	if k > len(all) {
		k = len(all)
	}
	out := make([]int, 0, k)
	used := make(map[int]bool, k)
	for len(out) < k {
		best := -1
		for i, s := range all {
			if used[i] {
				continue
			}
			if best < 0 || s.c < all[best].c ||
				(s.c == all[best].c && s.task < all[best].task) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		used[best] = true
		out = append(out, all[best].task)
	}
	return out
}

// ConfidentEnough reports whether a posterior is already so peaked
// that further answers are unlikely to change the verdict; used by
// CDB+ to stop early and redirect budget to uncertain tasks.
func ConfidentEnough(p []float64, threshold float64) bool {
	if len(p) == 0 {
		return false
	}
	max := 0.0
	for _, v := range p {
		if v > max {
			max = v
		}
	}
	return max >= threshold && !math.IsNaN(max)
}
