package cql

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParsePaperQuery3J(t *testing.T) {
	// The 3J query from Table 4.
	q := `SELECT Paper.title, Citation.number, University.country
	      FROM Paper, Citation, Researcher, University
	      WHERE Paper.title CROWDJOIN Citation.title AND
	            Paper.author CROWDJOIN Researcher.name AND
	            University.name CROWDJOIN Researcher.affiliation;`
	st, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := st.(*Select)
	if !ok {
		t.Fatalf("parsed %T", st)
	}
	if len(s.Cols) != 3 || s.Star {
		t.Fatalf("cols = %v", s.Cols)
	}
	if len(s.From) != 4 {
		t.Fatalf("from = %v", s.From)
	}
	if len(s.Where) != 3 {
		t.Fatalf("where = %v", s.Where)
	}
	for _, p := range s.Where {
		if p.Kind != CrowdJoin {
			t.Fatalf("predicate kind = %v", p.Kind)
		}
	}
	if s.Where[0].Left.String() != "Paper.title" || s.Where[0].Right.String() != "Citation.title" {
		t.Fatalf("first predicate = %v", s.Where[0])
	}
}

func TestParseStarAndSelection(t *testing.T) {
	q := `SELECT * FROM University WHERE University.country CROWDEQUAL "USA";`
	st, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	s := st.(*Select)
	if !s.Star {
		t.Fatal("expected SELECT *")
	}
	if len(s.Where) != 1 || s.Where[0].Kind != CrowdEqual || s.Where[0].Value != "USA" {
		t.Fatalf("where = %v", s.Where)
	}
}

func TestParseBudget(t *testing.T) {
	st, err := Parse(`SELECT * FROM T WHERE T.a CROWDEQUAL 'x' BUDGET 500`)
	if err != nil {
		t.Fatal(err)
	}
	if st.(*Select).Budget != 500 {
		t.Fatalf("budget = %d", st.(*Select).Budget)
	}
	if _, err := Parse(`SELECT * FROM T BUDGET 0`); err == nil {
		t.Fatal("zero budget should be rejected")
	}
}

func TestParseTraditionalPredicates(t *testing.T) {
	st, err := Parse(`SELECT * FROM A, B WHERE A.x = B.y AND A.z = 'v' AND A.n = 42`)
	if err != nil {
		t.Fatal(err)
	}
	w := st.(*Select).Where
	if w[0].Kind != EquiJoin {
		t.Fatalf("w0 = %v", w[0])
	}
	if w[1].Kind != Equal || w[1].Value != "v" {
		t.Fatalf("w1 = %v", w[1])
	}
	if w[2].Kind != Equal || w[2].Value != "42" {
		t.Fatalf("w2 = %v", w[2])
	}
}

func TestParseCreateTable(t *testing.T) {
	q := `CREATE TABLE Researcher (name varchar(64), gender CROWD varchar(16), age int, score float);`
	st, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*CreateTable)
	if ct.Crowd || ct.Name != "Researcher" || len(ct.Cols) != 4 {
		t.Fatalf("create = %+v", ct)
	}
	if ct.Cols[0].Crowd || !ct.Cols[1].Crowd {
		t.Fatal("CROWD column flags wrong")
	}
	if ct.Cols[1].Type != "varchar" || ct.Cols[1].Size != 16 {
		t.Fatalf("col1 = %+v", ct.Cols[1])
	}
	if ct.Cols[2].Type != "int" || ct.Cols[3].Type != "float" {
		t.Fatal("numeric types wrong")
	}
}

func TestParseCreateCrowdTable(t *testing.T) {
	q := `CREATE CROWD TABLE University (name varchar(64), city varchar(64), country varchar(64));`
	st, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*CreateTable)
	if !ct.Crowd {
		t.Fatal("CROWD TABLE flag lost")
	}
}

func TestParseFill(t *testing.T) {
	st, err := Parse(`FILL Researcher.affiliation WHERE Researcher.gender = 'female';`)
	if err != nil {
		t.Fatal(err)
	}
	f := st.(*Fill)
	if f.Target.String() != "Researcher.affiliation" {
		t.Fatalf("target = %v", f.Target)
	}
	if len(f.Where) != 1 || f.Where[0].Value != "female" {
		t.Fatalf("where = %v", f.Where)
	}
	if _, err := Parse(`FILL gender`); err == nil {
		t.Fatal("unqualified FILL target should be rejected")
	}
}

func TestParseCollect(t *testing.T) {
	st, err := Parse(`COLLECT University.name, University.city WHERE University.country = "US" BUDGET 100;`)
	if err != nil {
		t.Fatal(err)
	}
	c := st.(*Collect)
	if len(c.Cols) != 2 || c.Budget != 100 {
		t.Fatalf("collect = %+v", c)
	}
	if _, err := Parse(`COLLECT name`); err == nil {
		t.Fatal("unqualified COLLECT column should be rejected")
	}
}

func TestParseAllScript(t *testing.T) {
	script := `
	CREATE TABLE A (x varchar(8));
	CREATE TABLE B (y varchar(8));
	SELECT * FROM A, B WHERE A.x CROWDJOIN B.y;
	`
	stmts, err := ParseAll(script)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("parsed %d statements", len(stmts))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`;`,
		`DROP TABLE x`,
		`SELECT FROM T`,
		`SELECT * T`,
		`SELECT * FROM`,
		`SELECT * FROM T WHERE`,
		`SELECT * FROM T WHERE T.a CROWDJOIN`,
		`SELECT * FROM T WHERE T.a CROWDJOIN b`,
		`SELECT * FROM T WHERE T.a CROWDEQUAL 5`,
		`SELECT * FROM T WHERE T.a <> 5`,
		`CREATE TABLE (x int)`,
		`CREATE TABLE T x int`,
		`CREATE TABLE T (x varchar)`,
		`CREATE TABLE T (x blob)`,
		`SELECT * FROM T BUDGET x`,
		`SELECT * FROM T WHERE T.a = 'unterminated`,
		`SELECT * FROM T @`,
	}
	for _, q := range bad {
		if _, err := ParseAll(q); err == nil {
			t.Errorf("accepted bad input %q", q)
		}
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	st, err := Parse(`select * from T where T.a crowdequal 'x' budget 7`)
	if err != nil {
		t.Fatal(err)
	}
	s := st.(*Select)
	if !s.Star || s.Budget != 7 || s.Where[0].Kind != CrowdEqual {
		t.Fatalf("case-insensitive parse wrong: %+v", s)
	}
}

func TestParseRejectsTwoStatementsInParse(t *testing.T) {
	if _, err := Parse(`SELECT * FROM A; SELECT * FROM B;`); err == nil {
		t.Fatal("Parse should reject multiple statements")
	}
}

// TestRoundTrip: String() output re-parses to an equivalent statement.
func TestRoundTrip(t *testing.T) {
	queries := []string{
		`SELECT * FROM Paper, Citation WHERE Paper.title CROWDJOIN Citation.title;`,
		`SELECT Paper.title, Citation.number FROM Paper, Citation WHERE Paper.title CROWDJOIN Citation.title AND Paper.conference CROWDEQUAL "sigmod" BUDGET 300;`,
		`CREATE CROWD TABLE University (name varchar(64), country CROWD varchar(32), rank int);`,
		`FILL Researcher.gender;`,
		`COLLECT University.name, University.city WHERE University.country = "US" BUDGET 50;`,
	}
	for _, q := range queries {
		s1, err := Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		s2, err := Parse(s1.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", s1.String(), err)
		}
		if s1.String() != s2.String() {
			t.Fatalf("round trip drift:\n  %s\n  %s", s1.String(), s2.String())
		}
	}
}

// TestLexerNeverPanics: arbitrary input either lexes or errors.
func TestLexerNeverPanics(t *testing.T) {
	err := quick.Check(func(s string) bool {
		toks, err := lex(s)
		if err != nil {
			return true
		}
		return len(toks) >= 1 && toks[len(toks)-1].kind == tokEOF
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

// TestParserNeverPanics on fuzz-ish inputs built from CQL fragments.
func TestParserNeverPanics(t *testing.T) {
	frag := []string{"SELECT", "*", "FROM", "WHERE", "T.a", "CROWDJOIN", "CROWDEQUAL",
		"'x'", "AND", ",", "(", ")", "BUDGET", "5", "CREATE", "TABLE", "CROWD", "FILL", "COLLECT", ";"}
	err := quick.Check(func(seed uint64) bool {
		var sb strings.Builder
		x := seed
		for i := 0; i < 12; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			sb.WriteString(frag[x%uint64(len(frag))])
			sb.WriteString(" ")
		}
		_, _ = ParseAll(sb.String()) // must not panic
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParseGroupOrderBy(t *testing.T) {
	st, err := Parse(`SELECT Paper.conference FROM Paper, Citation
		WHERE Paper.title CROWDJOIN Citation.title
		GROUP BY Paper.conference ORDER BY Paper.conference BUDGET 10;`)
	if err != nil {
		t.Fatal(err)
	}
	s := st.(*Select)
	if s.GroupBy == nil || s.GroupBy.String() != "Paper.conference" {
		t.Fatalf("group by = %v", s.GroupBy)
	}
	if s.OrderBy == nil || s.OrderBy.String() != "Paper.conference" {
		t.Fatalf("order by = %v", s.OrderBy)
	}
	if s.Budget != 10 {
		t.Fatalf("budget = %d", s.Budget)
	}
	// Round trip.
	st2, err := Parse(s.String())
	if err != nil {
		t.Fatal(err)
	}
	if st2.String() != s.String() {
		t.Fatalf("round trip drift: %s vs %s", st2.String(), s.String())
	}
}

func TestParseGroupOrderByErrors(t *testing.T) {
	bad := []string{
		`SELECT * FROM T GROUP Paper.conference`,
		`SELECT * FROM T GROUP BY`,
		`SELECT * FROM T GROUP BY conference`,
		`SELECT * FROM T ORDER BY`,
		`SELECT * FROM T ORDER BY conference`,
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("accepted %q", q)
		}
	}
}
