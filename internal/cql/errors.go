package cql

import "fmt"

// ParseError is a CQL syntax error pinned to its position in the
// input. Every lexer and parser failure is one, so callers can
// errors.As for it and point at the offending token — a shell
// underlines it, an HTTP front-end returns the offset in its error
// payload — instead of string-matching "at offset".
type ParseError struct {
	// Offset is the byte offset of the offending token in the parsed
	// input, or -1 when the error has no single position (e.g. empty
	// input).
	Offset int
	// Near is the offending token's text; "" at end of input or when
	// no token is implicated.
	Near string
	// Msg describes the problem without position information.
	Msg string
}

// Error implements error, rendering position info when present.
func (e *ParseError) Error() string {
	s := "cql: " + e.Msg
	if e.Offset >= 0 {
		s += fmt.Sprintf(" at offset %d", e.Offset)
	}
	if e.Near != "" {
		s += fmt.Sprintf(" near %q", e.Near)
	}
	return s
}

// perr builds a ParseError at offset (pass -1 for position-free
// errors) implicating the token text near.
func perr(offset int, near, format string, args ...any) *ParseError {
	return &ParseError{Offset: offset, Near: near, Msg: fmt.Sprintf(format, args...)}
}

// perrAt pins the error at the parser's current token.
func (p *parser) perrAt(format string, args ...any) *ParseError {
	return perr(p.cur().pos, p.cur().text, format, args...)
}
