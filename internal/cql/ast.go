package cql

import (
	"fmt"
	"strings"
)

// Statement is any parsed CQL statement.
type Statement interface {
	stmt()
	// String renders the statement back to canonical CQL.
	String() string
}

// ColRef names a column, optionally table-qualified.
type ColRef struct {
	Table  string
	Column string
}

// String renders Table.Column (or just Column).
func (c ColRef) String() string {
	if c.Table == "" {
		return c.Column
	}
	return c.Table + "." + c.Column
}

// PredKind classifies WHERE predicates.
type PredKind int

// Predicate kinds.
const (
	// CrowdJoin: T.C CROWDJOIN T'.C' — a crowd-powered join.
	CrowdJoin PredKind = iota
	// CrowdEqual: T.C CROWDEQUAL 'v' — a crowd-powered selection.
	CrowdEqual
	// EquiJoin: T.C = T'.C' — a traditional join (weight-1 edges).
	EquiJoin
	// Equal: T.C = 'v' — a traditional selection.
	Equal
)

// String implements fmt.Stringer.
func (k PredKind) String() string {
	switch k {
	case CrowdJoin:
		return "CROWDJOIN"
	case CrowdEqual:
		return "CROWDEQUAL"
	case EquiJoin:
		return "="
	case Equal:
		return "="
	default:
		return "?"
	}
}

// Predicate is one conjunct of a WHERE clause. Join kinds use Left and
// Right; selection kinds use Left and Value.
type Predicate struct {
	Kind  PredKind
	Left  ColRef
	Right ColRef
	Value string
}

// String renders the predicate in CQL syntax.
func (p Predicate) String() string {
	switch p.Kind {
	case CrowdJoin:
		return fmt.Sprintf("%s CROWDJOIN %s", p.Left, p.Right)
	case CrowdEqual:
		return fmt.Sprintf("%s CROWDEQUAL %q", p.Left, p.Value)
	case EquiJoin:
		return fmt.Sprintf("%s = %s", p.Left, p.Right)
	default:
		return fmt.Sprintf("%s = %q", p.Left, p.Value)
	}
}

// IsCrowd reports whether the predicate needs the crowd.
func (p Predicate) IsCrowd() bool { return p.Kind == CrowdJoin || p.Kind == CrowdEqual }

// IsJoin reports whether the predicate relates two tables.
func (p Predicate) IsJoin() bool { return p.Kind == CrowdJoin || p.Kind == EquiJoin }

// ColDef is one column of a CREATE TABLE.
type ColDef struct {
	Name  string
	Type  string // "varchar", "int", "float"
	Size  int    // varchar length, 0 otherwise
	Crowd bool   // declared with CROWD: values may be FILLed
}

// String renders the definition.
func (c ColDef) String() string {
	crowd := ""
	if c.Crowd {
		crowd = " CROWD"
	}
	typ := c.Type
	if c.Type == "varchar" {
		typ = fmt.Sprintf("varchar(%d)", c.Size)
	}
	return fmt.Sprintf("%s%s %s", c.Name, crowd, typ)
}

// CreateTable is CREATE [CROWD] TABLE name (cols…).
type CreateTable struct {
	Name  string
	Crowd bool // CREATE CROWD TABLE: rows may be COLLECTed
	Cols  []ColDef
}

func (*CreateTable) stmt() {}

// String implements Statement.
func (c *CreateTable) String() string {
	crowd := ""
	if c.Crowd {
		crowd = "CROWD "
	}
	cols := make([]string, len(c.Cols))
	for i, col := range c.Cols {
		cols[i] = col.String()
	}
	return fmt.Sprintf("CREATE %sTABLE %s (%s);", crowd, c.Name, strings.Join(cols, ", "))
}

// Select is SELECT cols FROM tables WHERE preds
// [GROUP BY col] [ORDER BY col] [BUDGET n].
type Select struct {
	Star    bool
	Cols    []ColRef
	From    []string
	Where   []Predicate
	GroupBy *ColRef // crowd-powered grouping of the result (§4.2 Remark)
	OrderBy *ColRef // crowd-powered ordering of the result
	Budget  int     // 0 = unbounded
}

func (*Select) stmt() {}

// String implements Statement.
func (s *Select) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Star {
		b.WriteString("*")
	} else {
		parts := make([]string, len(s.Cols))
		for i, c := range s.Cols {
			parts[i] = c.String()
		}
		b.WriteString(strings.Join(parts, ", "))
	}
	b.WriteString(" FROM ")
	b.WriteString(strings.Join(s.From, ", "))
	if len(s.Where) > 0 {
		b.WriteString(" WHERE ")
		parts := make([]string, len(s.Where))
		for i, p := range s.Where {
			parts[i] = p.String()
		}
		b.WriteString(strings.Join(parts, " AND "))
	}
	if s.GroupBy != nil {
		fmt.Fprintf(&b, " GROUP BY %s", s.GroupBy)
	}
	if s.OrderBy != nil {
		fmt.Fprintf(&b, " ORDER BY %s", s.OrderBy)
	}
	if s.Budget > 0 {
		fmt.Fprintf(&b, " BUDGET %d", s.Budget)
	}
	b.WriteString(";")
	return b.String()
}

// Explain is EXPLAIN <statement>: plan the target without issuing any
// crowd work and report the plan. Only SELECT targets are plannable;
// the engine rejects others with an unsupported error.
type Explain struct {
	Target Statement
}

func (*Explain) stmt() {}

// String implements Statement.
func (e *Explain) String() string {
	return "EXPLAIN " + e.Target.String()
}

// Fill is FILL Table.Col [WHERE preds] [BUDGET n]: crowd-fill missing
// (CNULL) values of a CROWD column.
type Fill struct {
	Target ColRef
	Where  []Predicate
	Budget int
}

func (*Fill) stmt() {}

// String implements Statement.
func (f *Fill) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FILL %s", f.Target)
	writeWhereBudget(&b, f.Where, f.Budget)
	b.WriteString(";")
	return b.String()
}

// Collect is COLLECT Table.Col, … [WHERE preds] [BUDGET n]: crowd-collect
// new tuples for a CROWD table.
type Collect struct {
	Cols   []ColRef
	Where  []Predicate
	Budget int
}

func (*Collect) stmt() {}

// String implements Statement.
func (c *Collect) String() string {
	var b strings.Builder
	parts := make([]string, len(c.Cols))
	for i, col := range c.Cols {
		parts[i] = col.String()
	}
	fmt.Fprintf(&b, "COLLECT %s", strings.Join(parts, ", "))
	writeWhereBudget(&b, c.Where, c.Budget)
	b.WriteString(";")
	return b.String()
}

func writeWhereBudget(b *strings.Builder, where []Predicate, budget int) {
	if len(where) > 0 {
		b.WriteString(" WHERE ")
		parts := make([]string, len(where))
		for i, p := range where {
			parts[i] = p.String()
		}
		b.WriteString(strings.Join(parts, " AND "))
	}
	if budget > 0 {
		fmt.Fprintf(b, " BUDGET %d", budget)
	}
}
