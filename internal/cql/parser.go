package cql

import (
	"strconv"
)

// Parse parses a single CQL statement (a trailing semicolon is
// optional).
func Parse(input string) (Statement, error) {
	stmts, err := ParseAll(input)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, perr(-1, "", "expected one statement, found %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseAll parses a semicolon-separated script.
func ParseAll(input string) ([]Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out []Statement
	for !p.at(tokEOF) {
		if p.atSymbol(";") {
			p.next()
			continue
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		if p.atSymbol(";") {
			p.next()
		}
	}
	if len(out) == 0 {
		return nil, perr(-1, "", "empty input")
	}
	return out, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(k tokenKind) bool { return p.cur().kind == k }
func (p *parser) atSymbol(s string) bool {
	return p.cur().kind == tokSymbol && p.cur().text == s
}
func (p *parser) atKeyword(k string) bool {
	return p.cur().kind == tokKeyword && p.cur().text == k
}

func (p *parser) expectSymbol(s string) error {
	if !p.atSymbol(s) {
		return p.perrAt("expected %q", s)
	}
	p.next()
	return nil
}

func (p *parser) expectKeyword(k string) error {
	if !p.atKeyword(k) {
		return p.perrAt("expected %s", k)
	}
	p.next()
	return nil
}

func (p *parser) ident() (string, error) {
	if !p.at(tokIdent) {
		return "", p.perrAt("expected identifier")
	}
	return p.next().text, nil
}

func (p *parser) number() (int, error) {
	if !p.at(tokNumber) {
		return 0, p.perrAt("expected number")
	}
	n, err := strconv.Atoi(p.next().text)
	if err != nil {
		return 0, perr(-1, "", "bad number: %v", err)
	}
	return n, nil
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.atKeyword("CREATE"):
		return p.createTable()
	case p.atKeyword("SELECT"):
		return p.selectStmt()
	case p.atKeyword("FILL"):
		return p.fillStmt()
	case p.atKeyword("COLLECT"):
		return p.collectStmt()
	case p.atKeyword("EXPLAIN"):
		p.next()
		target, err := p.statement()
		if err != nil {
			return nil, err
		}
		if _, nested := target.(*Explain); nested {
			return nil, perr(-1, "", "EXPLAIN cannot be nested")
		}
		return &Explain{Target: target}, nil
	default:
		return nil, p.perrAt("unexpected token")
	}
}

func (p *parser) createTable() (Statement, error) {
	p.next() // CREATE
	ct := &CreateTable{}
	if p.atKeyword("CROWD") {
		ct.Crowd = true
		p.next()
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ct.Name = name
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	for {
		col, err := p.colDef()
		if err != nil {
			return nil, err
		}
		ct.Cols = append(ct.Cols, col)
		if p.atSymbol(",") {
			p.next()
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return ct, nil
}

func (p *parser) colDef() (ColDef, error) {
	var c ColDef
	name, err := p.ident()
	if err != nil {
		return c, err
	}
	c.Name = name
	if p.atKeyword("CROWD") {
		c.Crowd = true
		p.next()
	}
	switch {
	case p.atKeyword("VARCHAR"):
		p.next()
		c.Type = "varchar"
		if err := p.expectSymbol("("); err != nil {
			return c, err
		}
		n, err := p.number()
		if err != nil {
			return c, err
		}
		c.Size = n
		if err := p.expectSymbol(")"); err != nil {
			return c, err
		}
	case p.atKeyword("INT"):
		p.next()
		c.Type = "int"
	case p.atKeyword("FLOAT"):
		p.next()
		c.Type = "float"
	default:
		return c, p.perrAt("expected column type")
	}
	return c, nil
}

// colRef parses Table.Column or a bare Column.
func (p *parser) colRef() (ColRef, error) {
	first, err := p.ident()
	if err != nil {
		return ColRef{}, err
	}
	if p.atSymbol(".") {
		p.next()
		col, err := p.ident()
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Table: first, Column: col}, nil
	}
	return ColRef{Column: first}, nil
}

func (p *parser) selectStmt() (Statement, error) {
	p.next() // SELECT
	s := &Select{}
	if p.atSymbol("*") {
		p.next()
		s.Star = true
	} else {
		for {
			c, err := p.colRef()
			if err != nil {
				return nil, err
			}
			s.Cols = append(s.Cols, c)
			if p.atSymbol(",") {
				p.next()
				continue
			}
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		t, err := p.ident()
		if err != nil {
			return nil, err
		}
		s.From = append(s.From, t)
		if p.atSymbol(",") {
			p.next()
			continue
		}
		break
	}
	where, err := p.optWhere()
	if err != nil {
		return nil, err
	}
	s.Where = where
	if p.atKeyword("GROUP") {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		ref, err := p.colRef()
		if err != nil {
			return nil, err
		}
		if ref.Table == "" {
			return nil, perr(-1, "", "GROUP BY column must be table-qualified")
		}
		s.GroupBy = &ref
	}
	if p.atKeyword("ORDER") {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		ref, err := p.colRef()
		if err != nil {
			return nil, err
		}
		if ref.Table == "" {
			return nil, perr(-1, "", "ORDER BY column must be table-qualified")
		}
		s.OrderBy = &ref
	}
	budget, err := p.optBudget()
	if err != nil {
		return nil, err
	}
	s.Budget = budget
	return s, nil
}

func (p *parser) optWhere() ([]Predicate, error) {
	if !p.atKeyword("WHERE") {
		return nil, nil
	}
	p.next()
	var preds []Predicate
	for {
		pr, err := p.predicate()
		if err != nil {
			return nil, err
		}
		preds = append(preds, pr)
		if p.atKeyword("AND") {
			p.next()
			continue
		}
		break
	}
	return preds, nil
}

func (p *parser) optBudget() (int, error) {
	if !p.atKeyword("BUDGET") {
		return 0, nil
	}
	p.next()
	n, err := p.number()
	if err != nil {
		return 0, err
	}
	if n <= 0 {
		return 0, perr(-1, "", "BUDGET must be positive, got %d", n)
	}
	return n, nil
}

func (p *parser) predicate() (Predicate, error) {
	left, err := p.colRef()
	if err != nil {
		return Predicate{}, err
	}
	switch {
	case p.atKeyword("CROWDJOIN"):
		p.next()
		right, err := p.colRef()
		if err != nil {
			return Predicate{}, err
		}
		if right.Table == "" {
			return Predicate{}, perr(-1, "", "CROWDJOIN right side must be table-qualified")
		}
		return Predicate{Kind: CrowdJoin, Left: left, Right: right}, nil
	case p.atKeyword("CROWDEQUAL"):
		p.next()
		if !p.at(tokString) {
			return Predicate{}, p.perrAt("CROWDEQUAL expects a string literal")
		}
		return Predicate{Kind: CrowdEqual, Left: left, Value: p.next().text}, nil
	case p.atSymbol("="):
		p.next()
		switch {
		case p.at(tokString):
			return Predicate{Kind: Equal, Left: left, Value: p.next().text}, nil
		case p.at(tokNumber):
			return Predicate{Kind: Equal, Left: left, Value: p.next().text}, nil
		case p.at(tokIdent):
			right, err := p.colRef()
			if err != nil {
				return Predicate{}, err
			}
			if right.Table == "" {
				// A bare identifier on the right of '=' is treated as an
				// unquoted constant for convenience.
				return Predicate{Kind: Equal, Left: left, Value: right.Column}, nil
			}
			return Predicate{Kind: EquiJoin, Left: left, Right: right}, nil
		default:
			return Predicate{}, p.perrAt("bad right side of '='")
		}
	default:
		return Predicate{}, p.perrAt("expected CROWDJOIN, CROWDEQUAL or '='")
	}
}

func (p *parser) fillStmt() (Statement, error) {
	p.next() // FILL
	target, err := p.colRef()
	if err != nil {
		return nil, err
	}
	if target.Table == "" {
		return nil, perr(-1, "", "FILL target must be Table.Column")
	}
	where, err := p.optWhere()
	if err != nil {
		return nil, err
	}
	budget, err := p.optBudget()
	if err != nil {
		return nil, err
	}
	return &Fill{Target: target, Where: where, Budget: budget}, nil
}

func (p *parser) collectStmt() (Statement, error) {
	p.next() // COLLECT
	c := &Collect{}
	for {
		ref, err := p.colRef()
		if err != nil {
			return nil, err
		}
		if ref.Table == "" {
			return nil, perr(-1, "", "COLLECT columns must be Table.Column")
		}
		c.Cols = append(c.Cols, ref)
		if p.atSymbol(",") {
			p.next()
			continue
		}
		break
	}
	where, err := p.optWhere()
	if err != nil {
		return nil, err
	}
	c.Where = where
	budget, err := p.optBudget()
	if err != nil {
		return nil, err
	}
	c.Budget = budget
	return c, nil
}
