package cql

import (
	"testing"
)

// FuzzParseAll checks the parser never panics and that every accepted
// statement survives a render→re-parse round trip. Run the seed corpus
// with `go test`; explore with `go test -fuzz=FuzzParseAll`.
func FuzzParseAll(f *testing.F) {
	seeds := []string{
		`SELECT * FROM A, B WHERE A.x CROWDJOIN B.y;`,
		`SELECT a.b FROM T WHERE T.c CROWDEQUAL "v" BUDGET 3;`,
		`CREATE CROWD TABLE U (name varchar(64), n int, f float);`,
		`FILL T.c WHERE T.d = 'x';`,
		`COLLECT U.name BUDGET 9;`,
		`SELECT T.a FROM T GROUP BY T.a ORDER BY T.a;`,
		`select * from t where t.a = 5 and t.b = t2.c`,
		`;;;`,
		`SELECT`,
		"SELECT * FROM T WHERE T.a CROWDEQUAL '\x00\xff'",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmts, err := ParseAll(input)
		if err != nil {
			return
		}
		for _, st := range stmts {
			rendered := st.String()
			again, err := Parse(rendered)
			if err != nil {
				t.Fatalf("accepted %q but rendered form %q fails: %v", input, rendered, err)
			}
			if again.String() != rendered {
				t.Fatalf("unstable rendering: %q -> %q", rendered, again.String())
			}
		}
	})
}
