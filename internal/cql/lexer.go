// Package cql implements CDB's declarative language CQL (§3,
// Appendix A): standard SQL extended with the crowd-powered keywords
// CROWD, CROWDJOIN, CROWDEQUAL, FILL, COLLECT and BUDGET. The package
// provides a lexer, an AST and a recursive-descent parser; binding
// against a catalog happens in the executor.
package cql

import (
	"strconv"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // ( ) , . ; = *
)

// keywords recognized case-insensitively. Identifiers matching these
// are reported as tokKeyword with upper-cased text.
var keywords = map[string]bool{
	"CREATE": true, "TABLE": true, "CROWD": true,
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true,
	"CROWDJOIN": true, "CROWDEQUAL": true,
	"FILL": true, "COLLECT": true, "BUDGET": true, "EXPLAIN": true,
	"GROUP": true, "ORDER": true, "BY": true,
	"VARCHAR": true, "INT": true, "FLOAT": true,
}

type token struct {
	kind tokenKind
	text string // keywords upper-cased; strings unquoted
	pos  int    // byte offset for error messages
}

// lex tokenizes the input. It returns an error for unterminated
// strings or unexpected characters.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '\'':
			// Single-quoted strings are raw (SQL style, no escapes).
			j := i + 1
			for j < len(input) && input[j] != '\'' {
				j++
			}
			if j >= len(input) {
				return nil, perr(i, "", "unterminated string")
			}
			toks = append(toks, token{kind: tokString, text: input[i+1 : j], pos: i})
			i = j + 1
		case c == '"':
			// Double-quoted strings support Go-style backslash escapes,
			// matching how the AST renders constants back to text.
			j := i + 1
			for j < len(input) && input[j] != '"' {
				if input[j] == '\\' && j+1 < len(input) {
					j++
				}
				j++
			}
			if j >= len(input) {
				return nil, perr(i, "", "unterminated string")
			}
			unquoted, err := strconv.Unquote(input[i : j+1])
			if err != nil {
				return nil, perr(i, "", "bad string literal: %v", err)
			}
			toks = append(toks, token{kind: tokString, text: unquoted, pos: i})
			i = j + 1
		case c >= '0' && c <= '9':
			j := i
			for j < len(input) && input[j] >= '0' && input[j] <= '9' {
				j++
			}
			toks = append(toks, token{kind: tokNumber, text: input[i:j], pos: i})
			i = j
		case c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
			j := i
			for j < len(input) && (isIdentByte(input[j])) {
				j++
			}
			word := input[i:j]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{kind: tokKeyword, text: up, pos: i})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, pos: i})
			}
			i = j
		case strings.ContainsRune("(),.;=*", c):
			toks = append(toks, token{kind: tokSymbol, text: string(c), pos: i})
			i++
		default:
			return nil, perr(i, string(c), "unexpected character %q", c)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(input)})
	return toks, nil
}

func isIdentByte(b byte) bool {
	return b == '_' || b >= '0' && b <= '9' ||
		b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z'
}
