package faults

import (
	"sync"
	"testing"
)

// TestJudgeDeterministic checks the core contract: fates are a pure
// function of (seed, market, task, attempt, worker), independent of
// call order and of calls interleaved from other goroutines.
func TestJudgeDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, DropRate: 0.1, StragglerRate: 0.2, DuplicateRate: 0.05, CorruptRate: 0.05}
	a, b := New(cfg), New(cfg)

	// Draw from b in a scrambled order and from several goroutines.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for task := 99; task >= 0; task-- {
				for w := 0; w < 5; w++ {
					b.Judge("amt", task, g%2, (w+g)%5)
				}
			}
		}(g)
	}
	wg.Wait()

	for task := 0; task < 100; task++ {
		for w := 0; w < 5; w++ {
			got := b.Judge("amt", task, 0, w)
			want := a.Judge("amt", task, 0, w)
			if got != want {
				t.Fatalf("task %d worker %d: fate %+v vs %+v", task, w, got, want)
			}
		}
	}
}

// TestJudgeRates checks the empirical fault rates land near the
// configured probabilities on a large sample.
func TestJudgeRates(t *testing.T) {
	in := New(Config{Seed: 3, DropRate: 0.1, StragglerRate: 0.2, CorruptRate: 0.05})
	n := 20000
	for task := 0; task < n; task++ {
		in.Judge("m", task, 0, task%50)
	}
	s := in.Stats()
	checkRate := func(name string, got uint64, want float64) {
		t.Helper()
		r := float64(got) / float64(n)
		if r < want*0.8 || r > want*1.2 {
			t.Errorf("%s rate = %.4f, want ≈ %.2f", name, r, want)
		}
	}
	checkRate("drop", s.Dropped, 0.1)
	// Stragglers are only judged on non-dropped assignments.
	checkRate("straggle", s.Straggled, 0.2*0.9)
	checkRate("corrupt", s.Corrupted, 0.05*0.9)
}

// TestNilInjector: a nil injector is the no-chaos injector.
func TestNilInjector(t *testing.T) {
	var in *Injector
	if f := in.Judge("amt", 1, 0, 2); f != (Fate{}) {
		t.Fatalf("nil injector dealt %+v", f)
	}
	if got := in.DelayForBlackout("amt", 10); got != 10 {
		t.Fatalf("nil injector shifted tick to %d", got)
	}
	if s := in.Stats(); s != (Stats{}) {
		t.Fatalf("nil injector stats %+v", s)
	}
}

func TestBlackoutShift(t *testing.T) {
	in := New(Config{Blackouts: []Blackout{
		{Market: "amt", From: 10, Until: 20},
		{Market: "amt", From: 20, Until: 30}, // chained window
		{Market: "", From: 100, Until: 110},  // all markets
	}})
	cases := []struct {
		market string
		tick   int64
		want   int64
	}{
		{"amt", 5, 5},    // before the window
		{"amt", 10, 30},  // chained through both windows
		{"amt", 25, 30},  // inside the second window
		{"amt", 30, 30},  // window end is open
		{"cf", 15, 15},   // other market unaffected
		{"cf", 105, 110}, // global window hits every market
	}
	for _, c := range cases {
		if got := in.DelayForBlackout(c.market, c.tick); got != c.want {
			t.Errorf("DelayForBlackout(%s, %d) = %d, want %d", c.market, c.tick, got, c.want)
		}
	}
}

func TestRateClamping(t *testing.T) {
	in := New(Config{DropRate: 7, StragglerRate: -2})
	cfg := in.Config()
	if cfg.DropRate != 1 || cfg.StragglerRate != 0 {
		t.Fatalf("clamped config = %+v", cfg)
	}
}
