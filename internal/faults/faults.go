// Package faults is a deterministic chaos engine for the simulated
// crowd platforms. Real markets are unreliable in ways the clean
// simulator of internal/crowd never was: workers accept a HIT and walk
// away (drops), answers trickle in long after the requester's deadline
// (stragglers), platform callbacks fire twice (duplicates), bored
// workers click at random (corruption), and a whole market can stall
// for hours (blackouts). The injector decides each assignment's fate
// from a hash of (seed, market, task, attempt, worker) — never from
// shared mutable state — so a chaos run replays bit-identically under
// any goroutine interleaving, which is what lets the fault-injection
// test suite run with -race on a fixed seed matrix.
package faults

import (
	"fmt"
	"sync/atomic"

	"cdb/internal/obs"
	"cdb/internal/stats"
)

// Fault-injection metrics: how much chaos was actually dealt. These
// count injected faults at the platform side; the executor separately
// counts what it observed (lost tasks, late answers) — the gap between
// the two is the reliability policy doing its job.
var (
	mDropped    = obs.Default.Counter("cdb_faults_dropped_total")
	mStraggled  = obs.Default.Counter("cdb_faults_straggled_total")
	mDuplicated = obs.Default.Counter("cdb_faults_duplicated_total")
	mCorrupted  = obs.Default.Counter("cdb_faults_corrupted_total")
	mBlackout   = obs.Default.Counter("cdb_faults_blackout_delays_total")
)

// Blackout stalls one market (or all markets, when Market is empty) for
// a window of virtual ticks: any answer that would have arrived inside
// [From, Until) is held until the window ends.
type Blackout struct {
	Market string
	From   int64
	Until  int64
}

// Config sets the fault rates. Rates are probabilities in [0, 1] and
// are clamped on construction; the zero value injects nothing.
type Config struct {
	// Seed drives every fate decision. Equal seeds replay equal chaos.
	Seed uint64
	// DropRate is the probability an assignment's answer never arrives
	// (worker abandonment). Dropped assignments suppress all other
	// faults for that assignment.
	DropRate float64
	// StragglerRate is the probability an answer arrives only after the
	// issuing round's deadline has passed.
	StragglerRate float64
	// DuplicateRate is the probability an answer is delivered twice
	// (at-least-once platform callbacks).
	DuplicateRate float64
	// CorruptRate is the probability an answer is replaced by a random
	// verdict, independent of the worker's latent accuracy.
	CorruptRate float64
	// Blackouts lists market outage windows in virtual ticks.
	Blackouts []Blackout
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Fate is the injector's ruling on one worker assignment.
type Fate struct {
	// Drop: the answer never arrives.
	Drop bool
	// Straggle: the answer arrives after the round deadline.
	Straggle bool
	// Duplicate: the answer is delivered a second time.
	Duplicate bool
	// Corrupt: the answer is replaced by CorruptValue.
	Corrupt      bool
	CorruptValue bool
}

// Stats is a snapshot of injected-fault counts.
type Stats struct {
	Dropped, Straggled, Duplicated, Corrupted, BlackoutDelays uint64
}

// String renders the snapshot compactly for logs and bench tables.
func (s Stats) String() string {
	return fmt.Sprintf("dropped=%d straggled=%d duplicated=%d corrupted=%d blackout=%d",
		s.Dropped, s.Straggled, s.Duplicated, s.Corrupted, s.BlackoutDelays)
}

// Injector deals fates. All methods are nil-safe (a nil injector
// injects nothing) and safe for concurrent use: decisions read only
// immutable config, and counters are atomic.
type Injector struct {
	cfg Config

	dropped    atomic.Uint64
	straggled  atomic.Uint64
	duplicated atomic.Uint64
	corrupted  atomic.Uint64
	blackout   atomic.Uint64
}

// New builds an injector; rates are clamped into [0, 1].
func New(cfg Config) *Injector {
	cfg.DropRate = clamp01(cfg.DropRate)
	cfg.StragglerRate = clamp01(cfg.StragglerRate)
	cfg.DuplicateRate = clamp01(cfg.DuplicateRate)
	cfg.CorruptRate = clamp01(cfg.CorruptRate)
	return &Injector{cfg: cfg}
}

// Config returns the (clamped) configuration.
func (in *Injector) Config() Config {
	if in == nil {
		return Config{}
	}
	return in.cfg
}

// Judge rules on one assignment: worker `worker` answering attempt
// `attempt` of task `task` on `market`. The ruling is a pure function
// of the injector seed and the arguments.
func (in *Injector) Judge(market string, task, attempt, worker int) Fate {
	if in == nil {
		return Fate{}
	}
	c := &in.cfg
	if c.DropRate == 0 && c.StragglerRate == 0 && c.DuplicateRate == 0 && c.CorruptRate == 0 {
		return Fate{}
	}
	r := stats.HashRNG(c.Seed, stats.HashString(market),
		uint64(task), uint64(attempt), uint64(worker))
	// Fixed draw order keeps the fate stable when individual rates
	// change from zero to zero (each decision consumes one draw).
	var f Fate
	if r.Bool(c.DropRate) {
		f.Drop = true
		in.dropped.Add(1)
		mDropped.Inc()
		return f
	}
	if r.Bool(c.StragglerRate) {
		f.Straggle = true
		in.straggled.Add(1)
		mStraggled.Inc()
	}
	if r.Bool(c.DuplicateRate) {
		f.Duplicate = true
		in.duplicated.Add(1)
		mDuplicated.Inc()
	}
	if r.Bool(c.CorruptRate) {
		f.Corrupt = true
		f.CorruptValue = r.Bool(0.5)
		in.corrupted.Add(1)
		mCorrupted.Inc()
	}
	return f
}

// DelayForBlackout shifts a delivery tick out of any blackout window
// covering it on the given market, returning the adjusted tick.
// Windows may chain: an answer pushed to the end of one blackout can
// land inside the next.
func (in *Injector) DelayForBlackout(market string, tick int64) int64 {
	if in == nil || len(in.cfg.Blackouts) == 0 {
		return tick
	}
	shifted := false
	for moved := true; moved; {
		moved = false
		for _, b := range in.cfg.Blackouts {
			if b.Market != "" && b.Market != market {
				continue
			}
			if tick >= b.From && tick < b.Until {
				tick = b.Until
				moved, shifted = true, true
			}
		}
	}
	if shifted {
		in.blackout.Add(1)
		mBlackout.Inc()
	}
	return tick
}

// Stats snapshots the injected-fault counters.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return Stats{
		Dropped:        in.dropped.Load(),
		Straggled:      in.straggled.Load(),
		Duplicated:     in.duplicated.Load(),
		Corrupted:      in.corrupted.Load(),
		BlackoutDelays: in.blackout.Load(),
	}
}
