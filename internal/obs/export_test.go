package obs

import (
	"bytes"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("cdb_exec_tasks_total").Add(42)
	r.Counter("cdb_exec_queries_total").Inc()
	r.Gauge("cdb_exec_inflight").Set(3)
	h := r.Histogram("cdb_latency_batch_size", []float64{1, 4, 16})
	for _, x := range []float64{1, 2, 3, 5, 17, 0.5} {
		h.Observe(x)
	}
	d := r.Histogram("cdb_round_duration_seconds", []float64{0.001, 0.01, 0.1})
	d.Observe(0.0005)
	d.Observe(0.25)
	return r
}

// TestPrometheusGolden locks the text exposition format byte-for-byte:
// sorted metric families, cumulative histogram buckets with a +Inf
// terminal, and shortest-round-trip float formatting.
func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prometheus.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("prometheus text drifted from golden file.\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestServeEndpoints(t *testing.T) {
	r := goldenRegistry()
	addr, shutdown, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	if !bytes.Contains([]byte(metrics), []byte("cdb_exec_tasks_total 42")) {
		t.Fatalf("/metrics missing counter:\n%s", metrics)
	}
	if !bytes.Contains([]byte(metrics), []byte(`cdb_latency_batch_size_bucket{le="+Inf"} 6`)) {
		t.Fatalf("/metrics missing histogram:\n%s", metrics)
	}
	if idx := get("/debug/pprof/"); !bytes.Contains([]byte(idx), []byte("heap")) {
		t.Fatalf("/debug/pprof/ index unexpected:\n%.200s", idx)
	}
}

func TestStartProfilesWritesFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	stop, err := StartProfiles(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to flush.
	x := 0
	for i := 0; i < 1e6; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}
