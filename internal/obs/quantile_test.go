package obs

import (
	"math"
	"testing"
)

// TestHistSnapQuantile pins the bucket-interpolation estimator against
// hand-computed values on a tiny layout.
func TestHistSnapQuantile(t *testing.T) {
	// Bounds 1, 2, 4 (+Inf implicit); one observation per bucket.
	h := HistSnap{
		Bounds: []float64{1, 2, 4},
		Counts: []int64{1, 1, 1, 1},
		Count:  4,
	}
	cases := []struct{ q, want float64 }{
		{0.0, 0},   // rank 0 interpolates to the first bucket's floor
		{0.1, 0.4}, // rank 0.4 → 40% into [0,1)
		{0.25, 1},  // rank 1 → exactly the first bound
		{0.5, 2},   // rank 2 → exactly the second bound
		{0.625, 3}, // rank 2.5 → halfway into [2,4)'s single observation
		{0.75, 4},  // rank 3 → the last finite bound
		{1.0, 4},   // +Inf bucket clamps to the highest finite bound
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %g, want %g", c.q, got, c.want)
		}
	}
}

// TestHistSnapQuantileEdges pins degenerate inputs: empty histograms,
// empty buckets, out-of-range q.
func TestHistSnapQuantileEdges(t *testing.T) {
	var empty HistSnap
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %g, want 0", got)
	}

	// A gap: all mass in the last finite bucket.
	h := HistSnap{
		Bounds: []float64{1, 2, 4},
		Counts: []int64{0, 0, 2, 0},
		Count:  2,
	}
	if got := h.Quantile(0.5); math.Abs(got-3) > 1e-12 {
		t.Errorf("gap Quantile(0.5) = %g, want 3 (midpoint of [2,4))", got)
	}
	// q outside [0,1] clamps.
	if got := h.Quantile(-1); got != h.Quantile(0) {
		t.Errorf("Quantile(-1) = %g, want clamp to Quantile(0) = %g", got, h.Quantile(0))
	}
	if got := h.Quantile(2); got != h.Quantile(1) {
		t.Errorf("Quantile(2) = %g, want clamp to Quantile(1) = %g", got, h.Quantile(1))
	}
}

// TestSnapshotQuantiles checks Snapshot precomputes P50/P95/P99
// consistently with Quantile.
func TestSnapshotQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", DurationBuckets)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) * 0.001) // 0..99ms
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histogram count = %d", len(snap.Histograms))
	}
	hs := snap.Histograms[0]
	if hs.P50 != hs.Quantile(0.50) || hs.P95 != hs.Quantile(0.95) || hs.P99 != hs.Quantile(0.99) {
		t.Errorf("precomputed quantiles diverge: p50=%g p95=%g p99=%g", hs.P50, hs.P95, hs.P99)
	}
	if hs.P50 <= 0 || hs.P50 >= hs.P95 || hs.P95 > hs.P99 {
		t.Errorf("quantile ordering broken: p50=%g p95=%g p99=%g", hs.P50, hs.P95, hs.P99)
	}
	// Sanity: the median of 0..99ms must land near 50ms given the
	// exponential layout (bucket resolution, not exactness).
	if hs.P50 < 0.03 || hs.P50 > 0.08 {
		t.Errorf("p50 = %g, want ~0.05 within bucket resolution", hs.P50)
	}
}
