package obs

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as cumulative _bucket/_sum/_count series. Output
// is sorted by metric name, so equal registry states render
// byte-identically (the golden-file test relies on this).
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	for _, c := range snap.Counters {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", c.Name, c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range snap.Gauges {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", g.Name, g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range snap.Histograms {
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", h.Name); err != nil {
			return err
		}
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.Name, formatFloat(bound), cum); err != nil {
				return err
			}
		}
		cum += h.Counts[len(h.Counts)-1]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.Name, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", h.Name, formatFloat(h.Sum), h.Name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// PublishExpvar exposes the registry under the given expvar name
// (visible at /debug/vars of any expvar-serving mux). Safe to call
// repeatedly on the same registry; only the first call publishes.
// Panics (from expvar) if another variable already owns the name.
func (r *Registry) PublishExpvar(name string) {
	r.mu.Lock()
	already := r.published
	r.published = true
	r.mu.Unlock()
	if already {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// Handler returns an http.Handler serving the registry in Prometheus
// text format — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// NewServeMux builds the observability mux: the registry at /metrics,
// expvar at /debug/vars, and the runtime profiles at /debug/pprof/
// (profile, heap, goroutine, trace, …).
func NewServeMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the observability endpoint on addr (":0" picks a free
// port) and returns the bound address plus a shutdown function. The
// server runs until shutdown is called; serving errors after shutdown
// are swallowed.
func Serve(addr string, r *Registry) (boundAddr string, shutdown func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewServeMux(r)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
