package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// collectObs records spans in arrival (end) order.
type collectObs struct{ spans []Span }

func (c *collectObs) ObserveSpan(s Span) { c.spans = append(c.spans, s) }

func TestTracerNesting(t *testing.T) {
	var obs collectObs
	tr := NewTracer(&obs)
	root := tr.Begin(SpanQuery)
	parse := tr.Begin(SpanParse)
	tr.End(parse)
	round := tr.Begin(SpanRound)
	score := tr.Begin(SpanScore)
	tr.End(score)
	issue := tr.Begin(SpanIssue)
	tr.Mutate(issue, func(s *Span) { s.Tasks = 7; s.Asks = 35 })
	tr.End(issue)
	tr.Mutate(round, func(s *Span) { s.Round = 1 })
	tr.End(round)
	tr.End(root)
	trace := tr.Finish()

	if len(trace.Spans) != 5 {
		t.Fatalf("got %d spans, want 5", len(trace.Spans))
	}
	byName := map[string]Span{}
	for _, s := range trace.Spans {
		byName[s.Name] = s
	}
	if byName[SpanParse].Parent != byName[SpanQuery].ID {
		t.Errorf("parse parent = %d, want query %d", byName[SpanParse].Parent, byName[SpanQuery].ID)
	}
	if byName[SpanScore].Parent != byName[SpanRound].ID {
		t.Errorf("score parent = %d", byName[SpanScore].Parent)
	}
	if byName[SpanRound].Parent != byName[SpanQuery].ID {
		t.Errorf("round parent = %d", byName[SpanRound].Parent)
	}
	if byName[SpanQuery].Parent != -1 {
		t.Errorf("root parent = %d, want -1", byName[SpanQuery].Parent)
	}
	if byName[SpanIssue].Tasks != 7 || byName[SpanIssue].Asks != 35 {
		t.Errorf("issue counts = %+v", byName[SpanIssue])
	}
}

// TestTracerEventOrdering checks both orderings the schema promises:
// the collected trace lists spans in begin order with monotone start
// offsets, and the observer sees them in end order (children first).
func TestTracerEventOrdering(t *testing.T) {
	var obs collectObs
	tr := NewTracer(&obs)
	root := tr.Begin(SpanQuery)
	for r := 1; r <= 3; r++ {
		round := tr.Begin(SpanRound)
		tr.Event("cache-reset", nil)
		inner := tr.Begin(SpanScore)
		tr.End(inner)
		tr.Mutate(round, func(s *Span) { s.Round = r })
		tr.End(round)
	}
	tr.End(root)
	trace := tr.Finish()

	for i, s := range trace.Spans {
		if s.ID != i {
			t.Fatalf("span %d has id %d: collected order must be begin order", i, s.ID)
		}
		if i > 0 && s.Start < trace.Spans[i-1].Start {
			t.Fatalf("span %d starts before its predecessor (%d < %d)", i, s.Start, trace.Spans[i-1].Start)
		}
		if s.Kind == "span" && s.Dur < 0 {
			t.Fatalf("span %d not closed: dur=%d", i, s.Dur)
		}
	}
	rounds := trace.ByName(SpanRound)
	if len(rounds) != 3 {
		t.Fatalf("rounds = %d", len(rounds))
	}
	for i, s := range rounds {
		if s.Round != i+1 {
			t.Fatalf("round span %d has Round=%d", i, s.Round)
		}
	}
	// Observer order: every child ends (and is observed) before its
	// parent; the root arrives last.
	seen := map[int]bool{}
	for _, s := range obs.spans {
		seen[s.ID] = true
	}
	for _, s := range obs.spans {
		for _, child := range trace.Spans {
			if child.Parent == s.ID && child.Kind == "span" && !seen[child.ID] {
				t.Fatalf("parent %q observed before child %q", s.Name, child.Name)
			}
		}
	}
	if last := obs.spans[len(obs.spans)-1]; last.Name != SpanQuery {
		t.Fatalf("last observed span = %q, want root", last.Name)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	id := tr.Begin(SpanQuery)
	if id != NoSpan {
		t.Fatalf("nil Begin returned %d", id)
	}
	tr.Mutate(id, func(s *Span) { s.Tasks = 1 })
	tr.Event("x", nil)
	tr.End(id)
	if tr.Finish() != nil {
		t.Fatal("nil Finish should return nil")
	}
	if tr.TraceID() != 0 {
		t.Fatal("nil TraceID should be 0")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	tr := NewTracer(w)
	root := tr.Begin(SpanQuery)
	tr.Mutate(root, func(s *Span) { s.Query = "SELECT 1;" })
	round := tr.Begin(SpanRound)
	tr.Mutate(round, func(s *Span) { s.Round = 1; s.Tasks = 3 })
	tr.End(round)
	tr.End(root)
	trace := tr.Finish()
	if w.Err() != nil {
		t.Fatal(w.Err())
	}

	sc := bufio.NewScanner(&buf)
	var lines []Span
	for sc.Scan() {
		var s Span
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		lines = append(lines, s)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2", len(lines))
	}
	// Streamed (end-order) content must match the collected trace.
	byID := map[int]Span{}
	for _, s := range trace.Spans {
		byID[s.ID] = s
	}
	for _, got := range lines {
		if want := byID[got.ID]; got != want {
			t.Fatalf("streamed span %+v != collected %+v", got, want)
		}
	}

	// A trace re-emitted via WriteJSONL is begin-ordered.
	buf.Reset()
	if err := trace.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	out := strings.TrimSpace(buf.String())
	if n := len(strings.Split(out, "\n")); n != 2 {
		t.Fatalf("WriteJSONL lines = %d", n)
	}
	if !strings.Contains(strings.Split(out, "\n")[0], `"name":"query"`) {
		t.Fatalf("first WriteJSONL line is not the root: %s", out)
	}
}

func TestFinishClosesOpenSpans(t *testing.T) {
	tr := NewTracer(nil)
	tr.Begin(SpanQuery)
	tr.Begin(SpanRound) // never ended
	trace := tr.Finish()
	for _, s := range trace.Spans {
		if s.Dur < 0 {
			t.Fatalf("span %q left open after Finish", s.Name)
		}
	}
}
