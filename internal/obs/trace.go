package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Span names emitted by CDB's built-in instrumentation. The per-query
// span tree is
//
//	query
//	├── parse
//	├── plan
//	├── round (round=1, tasks=…, blue=…, red=…, pruned=…, edges_valid=…)
//	│   ├── score   candidate scoring (cost control, Eq. 1)
//	│   ├── batch   conflict-free batch selection (latency control, §5.2)
//	│   ├── issue   task issue + answer collection (tasks=…, assignments=…)
//	│   │   ├── collect  one async collect window (fault-tolerant transport)
//	│   │   └── reissue  a retry/hedge wave (event; tasks=… reissued)
//	│   ├── infer   truth inference (CDB+ EM; absent under majority voting)
//	│   └── color   graph coloring with the round's verdicts
//	├── round (round=2, …)
//	└── drain       the final strategy probe that returned no tasks
const (
	SpanQuery   = "query"
	SpanParse   = "parse"
	SpanPlan    = "plan"
	SpanRound   = "round"
	SpanScore   = "score"
	SpanBatch   = "batch"
	SpanIssue   = "issue"
	SpanCollect = "collect"
	SpanReissue = "reissue"
	SpanInfer   = "infer"
	SpanColor   = "color"
	SpanDrain   = "drain"
)

// Span is one typed record of the query lifecycle. Timings are
// monotonic offsets from the trace's start, so spans order and nest
// correctly even across wall-clock adjustments. Count fields are only
// meaningful on the span kinds that set them and are omitted from JSON
// when zero.
type Span struct {
	Trace  uint64 `json:"trace"`            // trace (query) identity
	Req    string `json:"req,omitempty"`    // request correlation ID (serving tier)
	ID     int    `json:"id"`               // dense per-trace span id
	Parent int    `json:"parent"`           // parent span id, -1 for the root
	Name   string `json:"name"`             // one of the Span* constants
	Kind   string `json:"kind"`             // "span" or "event"
	Start  int64  `json:"start_us"`         // µs since trace start (monotonic)
	Dur    int64  `json:"dur_us"`           // µs duration (0 for events)
	Query  string `json:"query,omitempty"`  // statement text (root span)
	Label  string `json:"label,omitempty"`  // freeform (strategy, dataset, …)
	Round  int    `json:"round,omitempty"`  // 1-based round number
	Tasks  int    `json:"tasks,omitempty"`  // crowd tasks issued
	Asks   int    `json:"asks,omitempty"`   // worker assignments collected
	Blue   int    `json:"blue,omitempty"`   // edges confirmed this round
	Red    int    `json:"red,omitempty"`    // edges refuted this round
	Pruned int    `json:"pruned,omitempty"` // edges invalidated without asking
	Edges  int    `json:"edges,omitempty"`  // valid uncolored edges remaining
	// Incremental-cache activity attributed to this span (the cost
	// engine's full rescans / delta rescans / pure cache serves).
	CacheFull  int    `json:"cache_full,omitempty"`
	CacheDelta int    `json:"cache_delta,omitempty"`
	CacheHit   int    `json:"cache_hit,omitempty"`
	Err        string `json:"err,omitempty"`
}

// SpanID identifies an open span within its Tracer. The zero Tracer
// operations return NoSpan, which every method accepts harmlessly.
type SpanID int

// NoSpan is the SpanID returned by operations on a nil Tracer.
const NoSpan SpanID = -1

// Observer receives completed spans as they end (children before
// parents, end-time order). Implementations must be safe for the
// tracer's locking discipline: calls arrive sequentially per tracer
// but possibly concurrently across tracers.
type Observer interface {
	ObserveSpan(Span)
}

var traceIDs atomic.Uint64

// Tracer records one query's span tree and streams finished spans to
// an Observer. All methods are nil-safe: a nil *Tracer is the disabled
// tracer, and every call on it is a single branch with no allocation —
// the hot-path contract the executor relies on.
//
// Begin/End follow a stack discipline (the parent of a new span is the
// most recently begun unfinished span), which matches the executor's
// strictly nested phases and keeps call sites free of parent plumbing.
type Tracer struct {
	mu    sync.Mutex
	id    uint64
	req   string // request correlation ID stamped on every span
	t0    time.Time
	spans []Span // by span id; Dur < 0 while still open
	stack []SpanID
	obs   Observer
}

// NewTracer creates a tracer for one query. obs may be nil (spans are
// then only collected for the final Trace).
func NewTracer(obs Observer) *Tracer {
	return &Tracer{id: traceIDs.Add(1), t0: time.Now(), obs: obs}
}

// TraceID returns the process-unique id of this trace (0 for nil).
func (t *Tracer) TraceID() uint64 {
	if t == nil {
		return 0
	}
	return t.id
}

func (t *Tracer) now() int64 { return time.Since(t.t0).Microseconds() }

// SetRequestID attaches the serving tier's request-correlation ID to
// this trace: every span already recorded and every span yet to come
// carries it, so the JSONL lines of one request are joinable by ID
// across processes. Nil-safe like every Tracer method.
func (t *Tracer) SetRequestID(id string) {
	if t == nil || id == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.req = id
	for i := range t.spans {
		t.spans[i].Req = id
	}
}

// Begin opens a span named name as a child of the current innermost
// open span and returns its id.
func (t *Tracer) Begin(name string) SpanID {
	if t == nil {
		return NoSpan
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	parent := -1
	if n := len(t.stack); n > 0 {
		parent = int(t.stack[n-1])
	}
	id := SpanID(len(t.spans))
	t.spans = append(t.spans, Span{
		Trace:  t.id,
		Req:    t.req,
		ID:     int(id),
		Parent: parent,
		Name:   name,
		Kind:   "span",
		Start:  t.now(),
		Dur:    -1,
	})
	t.stack = append(t.stack, id)
	return id
}

// Mutate applies f to the open span id (set counts, rename, attach an
// error) before it ends. No-op on a nil tracer or NoSpan.
func (t *Tracer) Mutate(id SpanID, f func(*Span)) {
	if t == nil || id == NoSpan {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) < len(t.spans) {
		f(&t.spans[id])
	}
}

// End closes span id (and, defensively, any deeper spans left open),
// records its duration and streams it to the observer.
func (t *Tracer) End(id SpanID) {
	if t == nil || id == NoSpan {
		return
	}
	t.mu.Lock()
	var done []Span
	for n := len(t.stack); n > 0; n = len(t.stack) {
		top := t.stack[n-1]
		t.stack = t.stack[:n-1]
		sp := &t.spans[top]
		if sp.Dur < 0 {
			sp.Dur = t.now() - sp.Start
		}
		done = append(done, *sp)
		if top == id {
			break
		}
	}
	obs := t.obs
	t.mu.Unlock()
	if obs != nil {
		for _, sp := range done {
			obs.ObserveSpan(sp)
		}
	}
}

// Event records an instantaneous child of the current innermost open
// span (a point annotation: calibration fitted, cache reset, …) and
// streams it immediately.
func (t *Tracer) Event(name string, f func(*Span)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	parent := -1
	if n := len(t.stack); n > 0 {
		parent = int(t.stack[n-1])
	}
	sp := Span{
		Trace:  t.id,
		Req:    t.req,
		ID:     len(t.spans),
		Parent: parent,
		Name:   name,
		Kind:   "event",
		Start:  t.now(),
	}
	if f != nil {
		f(&sp)
	}
	t.spans = append(t.spans, sp)
	obs := t.obs
	t.mu.Unlock()
	if obs != nil {
		obs.ObserveSpan(sp)
	}
}

// Finish ends any spans still open and returns the completed trace.
// The tracer must not be used afterwards.
func (t *Tracer) Finish() *Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	if n := len(t.stack); n > 0 {
		root := t.stack[0]
		t.mu.Unlock()
		t.End(root)
		t.mu.Lock()
	}
	tr := &Trace{TraceID: t.id, RequestID: t.req, Spans: t.spans}
	t.spans = nil
	t.mu.Unlock()
	return tr
}

// Trace is a completed span tree, attached to Result.Trace when
// tracing is enabled.
type Trace struct {
	TraceID uint64
	// RequestID is the serving tier's correlation ID when the query
	// arrived through cdbd (or the submitter set one); also stamped on
	// every span.
	RequestID string
	Spans     []Span
}

// ByName returns the spans with the given name, in begin order.
func (tr *Trace) ByName(name string) []Span {
	if tr == nil {
		return nil
	}
	var out []Span
	for _, s := range tr.Spans {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// WriteJSONL writes every span as one JSON object per line, in begin
// order (offline analyzers re-nest via the parent field).
func (tr *Trace) WriteJSONL(w io.Writer) error {
	if tr == nil {
		return nil
	}
	for i := range tr.Spans {
		if err := writeSpanLine(w, &tr.Spans[i]); err != nil {
			return err
		}
	}
	return nil
}

// jsonlBufPool recycles encode buffers so steady-state JSONL emission
// does not allocate per span.
var jsonlBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func writeSpanLine(w io.Writer, s *Span) error {
	buf := jsonlBufPool.Get().(*bytes.Buffer)
	defer jsonlBufPool.Put(buf)
	buf.Reset()
	enc := json.NewEncoder(buf)
	if err := enc.Encode(s); err != nil { // Encode appends '\n'
		return fmt.Errorf("obs: encode span: %w", err)
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// JSONLWriter is an Observer that appends each finished span as one
// JSON line to an underlying writer. Safe for concurrent use; wrap the
// writer in a bufio.Writer (and call Flush) for high-volume traces.
type JSONLWriter struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewJSONLWriter creates a JSONL-emitting observer over w.
func NewJSONLWriter(w io.Writer) *JSONLWriter { return &JSONLWriter{w: w} }

// ObserveSpan implements Observer. The first write error is retained
// (see Err) and later spans are dropped.
func (j *JSONLWriter) ObserveSpan(s Span) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	j.err = writeSpanLine(j.w, &s)
}

// Err returns the first write error encountered, if any.
func (j *JSONLWriter) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// TraceCarrier is implemented by task-selection strategies that can
// attribute their internal phases (scoring, batching) to the current
// query's tracer. The executor hands its tracer to the strategy before
// the round loop and clears it afterwards.
type TraceCarrier interface {
	SetTracer(*Tracer)
}

// CacheStatser is implemented by strategies with an internal score
// cache; the executor diffs consecutive readings to attribute cache
// activity to each round's span.
type CacheStatser interface {
	// CacheStats returns monotone totals: full rescans, delta rescans,
	// and rounds served entirely from cache.
	CacheStats() (full, delta, hit uint64)
}
