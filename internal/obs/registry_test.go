package obs

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	// Prometheus semantics: bucket i counts x <= bound i.
	for _, x := range []float64{0, 0.5, 1} { // <= 1
		h.Observe(x)
	}
	for _, x := range []float64{1.0001, 5, 10} { // (1, 10]
		h.Observe(x)
	}
	h.Observe(99)  // (10, 100]
	h.Observe(100) // (10, 100]
	h.Observe(1e9) // +Inf
	h.Observe(-3)  // below every bound lands in the first bucket
	counts := h.BucketCounts()
	want := []int64{4, 3, 2, 1}
	for i, w := range want {
		if counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts=%v)", i, counts[i], w, counts)
		}
	}
	if h.Count() != 10 {
		t.Errorf("count = %d, want 10", h.Count())
	}
	wantSum := 0.0 + 0.5 + 1 + 1.0001 + 5 + 10 + 99 + 100 + 1e9 - 3
	if math.Abs(h.Sum()-wantSum) > 1e-9*wantSum {
		t.Errorf("sum = %g, want %g", h.Sum(), wantSum)
	}
}

func TestHistogramUnsortedBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unsorted bounds")
		}
	}()
	newHistogram([]float64{10, 1})
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total")
	c2 := r.Counter("x_total")
	if c1 != c2 {
		t.Fatal("Counter did not return the same instance")
	}
	h1 := r.Histogram("h", SizeBuckets)
	h2 := r.Histogram("h", DurationBuckets) // bounds ignored after first
	if h1 != h2 {
		t.Fatal("Histogram did not return the same instance")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on cross-type name reuse")
		}
	}()
	r.Gauge("x_total")
}

// TestRegistryConcurrency hammers one registry from many goroutines;
// run under -race (the CI obs job does) to verify the lock-free metric
// updates and locked lookups are sound.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared_total")
			g := r.Gauge("shared_gauge")
			h := r.Histogram("shared_hist", []float64{10, 100, 1000})
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Set(int64(j))
				h.Observe(float64(j))
				if j%512 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := r.Histogram("shared_hist", nil).Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
	wantSum := float64(goroutines) * float64(perG*(perG-1)) / 2
	if got := r.Histogram("shared_hist", nil).Sum(); math.Abs(got-wantSum) > 1e-6 {
		t.Fatalf("histogram sum = %g, want %g", got, wantSum)
	}
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter("a_total").Inc()
	r.Gauge("g").Set(-5)
	r.Histogram("h", []float64{1}).Observe(0.5)
	s := r.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "a_total" || s.Counters[1].Name != "b_total" {
		t.Fatalf("counters = %+v", s.Counters)
	}
	if s.Counters[1].Value != 2 {
		t.Fatalf("b_total = %d", s.Counters[1].Value)
	}
	if len(s.Gauges) != 1 || s.Gauges[0].Value != -5 {
		t.Fatalf("gauges = %+v", s.Gauges)
	}
	if len(s.Histograms) != 1 || s.Histograms[0].Count != 1 {
		t.Fatalf("histograms = %+v", s.Histograms)
	}
}
