package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles turns on the runtime profilers requested by the
// command-line flags: a CPU profile streamed to cpuPath (when
// non-empty) and a heap profile written to memPath at stop time. The
// returned stop function must be called exactly once before process
// exit (defer it from main).
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("obs: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("obs: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("obs: create mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("obs: write mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
