// Package obs is CDB's observability subsystem: a zero-dependency
// metrics registry (atomic counters, gauges and fixed-bucket
// histograms) with snapshot, expvar and Prometheus-text exporters, a
// structured query-lifecycle tracer that records typed spans with
// monotonic timings, and profiling hooks for the command-line tools.
//
// The paper's optimizer claims are about three goals — cost (#tasks),
// latency (#rounds) and quality (F1) — but validating them on a
// running system needs visibility *inside* a query: where rounds spend
// their time, how many edges each answer pruned, whether the
// incremental score cache actually hit. Everything here is built so
// the answer costs nothing when nobody asks: metrics are single atomic
// operations, and every tracer method is a no-op on a nil receiver, so
// uninstrumented runs pay one predictable branch.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the Prometheus exporter to stay
// semantically a counter; this is not enforced).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into a fixed cumulative-style bucket
// layout (Prometheus semantics: bucket i counts observations <=
// Bounds[i]; one implicit +Inf bucket catches the rest). All methods
// are safe for concurrent use and allocation-free.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, updated by CAS
}

func newHistogram(bounds []float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram bounds not sorted: %v", bounds))
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one observation.
func (h *Histogram) Observe(x float64) {
	i := sort.SearchFloat64s(h.bounds, x) // first bound >= x
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + x)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the bucket upper bounds (without the implicit +Inf).
// The slice is owned by the histogram; callers must not modify it.
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCounts returns a copy of the per-bucket counts, the last entry
// being the +Inf overflow bucket.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Fixed bucket layouts shared by CDB's instrumentation, so dashboards
// can rely on stable boundaries across versions.
var (
	// DurationBuckets covers 1µs..10s exponentially, in seconds.
	DurationBuckets = []float64{
		1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
	// SizeBuckets covers counts (batch sizes, edges scored) in powers
	// of four up to ~1M.
	SizeBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}
)

// Registry is a named collection of metrics. The zero value is not
// usable; use NewRegistry. Metric lookup takes a mutex, so callers on
// hot paths should resolve their metrics once (package-level vars) and
// update them lock-free afterwards.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	hists     map[string]*Histogram
	published bool
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Default is the process-wide registry all of CDB's built-in
// instrumentation registers into.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
// Panics if the name is already taken by a different metric type.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkFree(name, "counter")
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkFree(name, "gauge")
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use. Later calls ignore bounds (the first
// registration wins), keeping call sites free to share a layout var.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.checkFree(name, "histogram")
	h := newHistogram(bounds)
	r.hists[name] = h
	return h
}

// checkFree panics when name is registered under another metric type —
// a programming error that would silently split a time series.
func (r *Registry) checkFree(name, want string) {
	if _, ok := r.counters[name]; ok {
		panic(fmt.Sprintf("obs: %s %q already registered as counter", want, name))
	}
	if _, ok := r.gauges[name]; ok {
		panic(fmt.Sprintf("obs: %s %q already registered as gauge", want, name))
	}
	if _, ok := r.hists[name]; ok {
		panic(fmt.Sprintf("obs: %s %q already registered as histogram", want, name))
	}
}

// CounterSnap is one counter in a Snapshot.
type CounterSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnap is one gauge in a Snapshot.
type GaugeSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistSnap is one histogram in a Snapshot. Counts has one more entry
// than Bounds (the +Inf bucket). P50/P95/P99 are the bucket-estimated
// latency quantiles (see Quantile) so dashboards and cdbtop read SLO
// numbers straight off the snapshot instead of re-deriving them.
type HistSnap struct {
	Name   string    `json:"name"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	P50    float64   `json:"p50"`
	P95    float64   `json:"p95"`
	P99    float64   `json:"p99"`
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket
// counts, Prometheus histogram_quantile style: find the bucket the
// rank falls into, then interpolate linearly inside it (the first
// bucket interpolates from 0). Observations in the +Inf bucket clamp
// to the highest finite bound — a histogram can't honestly claim more
// than its layout resolves. Returns 0 for an empty histogram.
func (h HistSnap) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 || len(h.Counts) != len(h.Bounds)+1 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	cum := int64(0)
	for i, c := range h.Counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i == len(h.Bounds) { // +Inf bucket
			return h.Bounds[len(h.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		hi := h.Bounds[i]
		if c == 0 {
			return hi
		}
		inBucket := rank - float64(cum-c)
		return lo + (hi-lo)*(inBucket/float64(c))
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Snapshot is a point-in-time copy of a registry, sorted by name for
// deterministic export. Individual metrics are read atomically, but
// the snapshot as a whole is not a consistent cut.
type Snapshot struct {
	Counters   []CounterSnap `json:"counters"`
	Gauges     []GaugeSnap   `json:"gauges"`
	Histograms []HistSnap    `json:"histograms"`
}

// Snapshot captures the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make([]CounterSnap, 0, len(r.counters))
	for name, c := range r.counters {
		counters = append(counters, CounterSnap{Name: name, Value: c.Value()})
	}
	gauges := make([]GaugeSnap, 0, len(r.gauges))
	for name, g := range r.gauges {
		gauges = append(gauges, GaugeSnap{Name: name, Value: g.Value()})
	}
	hists := make([]HistSnap, 0, len(r.hists))
	for name, h := range r.hists {
		hs := HistSnap{
			Name:   name,
			Bounds: h.Bounds(),
			Counts: h.BucketCounts(),
			Count:  h.Count(),
			Sum:    h.Sum(),
		}
		hs.P50, hs.P95, hs.P99 = hs.Quantile(0.50), hs.Quantile(0.95), hs.Quantile(0.99)
		hists = append(hists, hs)
	}
	r.mu.Unlock()
	sort.Slice(counters, func(i, j int) bool { return counters[i].Name < counters[j].Name })
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].Name < gauges[j].Name })
	sort.Slice(hists, func(i, j int) bool { return hists[i].Name < hists[j].Name })
	return Snapshot{Counters: counters, Gauges: gauges, Histograms: hists}
}
