package reqid

import (
	"context"
	"strings"
	"sync"
	"testing"
)

// TestNewUnique mints IDs from many goroutines at once and requires
// them all distinct — the property the serving tier's correlation
// depends on. Run under -race this also exercises the mint path's
// concurrency safety.
func TestNewUnique(t *testing.T) {
	const workers, perWorker = 16, 200
	var mu sync.Mutex
	seen := make(map[string]bool, workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids := make([]string, perWorker)
			for i := range ids {
				ids[i] = New()
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range ids {
				if seen[id] {
					t.Errorf("duplicate request ID %q", id)
				}
				seen[id] = true
			}
		}()
	}
	wg.Wait()
	for id := range seen {
		if !strings.HasPrefix(id, "req-") || len(id) != 4+16 {
			t.Fatalf("malformed ID %q", id)
		}
	}
}

func TestContextRoundTrip(t *testing.T) {
	c := Correlation{RequestID: "req-abc", TraceParent: NewTraceParent().String()}
	ctx := With(context.Background(), c)
	if got := From(ctx); got != c {
		t.Errorf("From(With(ctx)) = %+v, want %+v", got, c)
	}
	if got := From(context.Background()); got != (Correlation{}) {
		t.Errorf("From(empty ctx) = %+v, want zero", got)
	}
	if got := From(nil); got != (Correlation{}) { //nolint:staticcheck // nil-safety is the contract
		t.Errorf("From(nil) = %+v, want zero", got)
	}
}

func TestSanitize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"req-0123abcd", "req-0123abcd"},
		{"evil\nid\r\twith spaces", "evilidwithspaces"},
		{"\x00\x1f\x7f", ""},
		{strings.Repeat("a", 200), strings.Repeat("a", 128)},
	}
	for _, c := range cases {
		if got := Sanitize(c.in); got != c.want {
			t.Errorf("Sanitize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTraceParentRoundTrip(t *testing.T) {
	tp := NewTraceParent()
	s := tp.String()
	if len(s) != 55 {
		t.Fatalf("traceparent %q has length %d, want 55", s, len(s))
	}
	back, ok := ParseTraceParent(s)
	if !ok || back != tp {
		t.Fatalf("ParseTraceParent(%q) = %+v, %v; want %+v", s, back, ok, tp)
	}

	// Child keeps the trace, renames the hop.
	ch := tp.Child()
	if ch.TraceID != tp.TraceID {
		t.Errorf("Child changed the trace ID")
	}
	if ch.ParentID == tp.ParentID {
		t.Errorf("Child kept the parent ID")
	}

	bad := []string{
		"",
		"00-short",
		"01-" + s[3:], // unknown version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero parent id
		"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01", // non-hex
	}
	for _, b := range bad {
		if _, ok := ParseTraceParent(b); ok {
			t.Errorf("ParseTraceParent(%q) accepted malformed input", b)
		}
	}
}
