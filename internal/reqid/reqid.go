// Package reqid is the serving tier's request-correlation currency:
// process-unique request IDs, W3C traceparent handling, and the
// context plumbing that threads both from an HTTP header through
// Engine.Submit down to every trace span and query-log line.
//
// Crowd queries are long-lived and fail in partial ways; the only way
// to reason about one of them after the fact — or across the N cdbd
// shards the roadmap calls for — is a single ID minted (or accepted)
// at the edge and stamped on everything the request touches. The ID is
// deliberately a plain string: caller-supplied IDs pass through
// verbatim (after sanitizing), so an upstream load balancer's
// correlation scheme survives the hop into CDB.
package reqid

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync/atomic"
)

// Correlation carries one request's identity: the CDB request ID and
// the W3C traceparent it travels under.
type Correlation struct {
	// RequestID is the X-CDB-Request-ID value: caller-supplied or
	// minted at the serving edge, echoed on the response.
	RequestID string
	// TraceParent is the outgoing W3C traceparent header value.
	TraceParent string
}

type ctxKey struct{}

// With returns a context carrying c.
func With(ctx context.Context, c Correlation) context.Context {
	return context.WithValue(ctx, ctxKey{}, c)
}

// From extracts the correlation from ctx (zero value when absent).
func From(ctx context.Context) Correlation {
	if ctx == nil {
		return Correlation{}
	}
	c, _ := ctx.Value(ctxKey{}).(Correlation)
	return c
}

// seq breaks ties when the random source fails or stalls: even then
// two IDs minted by this process differ.
var seq atomic.Uint64

// New mints a process-unique request ID: "req-" + 16 hex chars. The
// randomness makes IDs unique across processes too, which is what
// lets traces from N shards be joined by ID without coordination.
func New() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		binary.BigEndian.PutUint64(b[:], seq.Add(1)<<16|0xdead)
	} else {
		// Fold in the sequence number so even a (misbehaving) random
		// source repeating itself cannot collide within the process.
		binary.BigEndian.PutUint64(b[:], binary.BigEndian.Uint64(b[:])^seq.Add(1)<<48)
	}
	return "req-" + hex.EncodeToString(b[:])
}

// maxIDLen bounds accepted caller-supplied IDs: long enough for any
// sane upstream scheme, short enough to keep log lines and span
// payloads honest.
const maxIDLen = 128

// Sanitize makes an untrusted caller-supplied ID safe to log and
// serialize: control characters and spaces are dropped (they would
// corrupt JSONL and log lines), and the result is capped at 128
// bytes. Returns "" for an empty or all-invalid input — the caller
// should then mint one.
func Sanitize(id string) string {
	if len(id) > maxIDLen {
		id = id[:maxIDLen]
	}
	out := make([]byte, 0, len(id))
	for i := 0; i < len(id); i++ {
		if c := id[i]; c > 0x20 && c < 0x7f {
			out = append(out, c)
		}
	}
	return string(out)
}

// TraceParent is a parsed W3C trace-context traceparent (version 00):
// 16-byte trace ID shared by every hop of a distributed operation,
// 8-byte parent (span) ID naming the hop itself.
type TraceParent struct {
	TraceID  [16]byte
	ParentID [8]byte
	Flags    byte
}

// NewTraceParent mints a fresh trace: random trace and parent IDs,
// sampled flag set.
func NewTraceParent() TraceParent {
	var tp TraceParent
	fill(tp.TraceID[:])
	fill(tp.ParentID[:])
	tp.Flags = 0x01
	return tp
}

// Child keeps the caller's trace ID but mints a fresh parent ID: the
// server becomes a new span in the caller's distributed trace instead
// of impersonating the hop that called it.
func (tp TraceParent) Child() TraceParent {
	out := tp
	fill(out.ParentID[:])
	return out
}

// String renders the canonical header value:
// 00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>.
func (tp TraceParent) String() string {
	buf := make([]byte, 0, 55)
	buf = append(buf, "00-"...)
	buf = hex.AppendEncode(buf, tp.TraceID[:])
	buf = append(buf, '-')
	buf = hex.AppendEncode(buf, tp.ParentID[:])
	buf = append(buf, '-')
	buf = hex.AppendEncode(buf, []byte{tp.Flags})
	return string(buf)
}

// ParseTraceParent parses a version-00 traceparent header. Returns
// ok=false for anything malformed — including the all-zero trace or
// parent IDs the spec declares invalid — so callers fall back to
// minting a fresh trace rather than propagating garbage.
func ParseTraceParent(s string) (TraceParent, bool) {
	var tp TraceParent
	if len(s) != 55 || s[0] != '0' || s[1] != '0' || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return tp, false
	}
	if _, err := hex.Decode(tp.TraceID[:], []byte(s[3:35])); err != nil {
		return tp, false
	}
	if _, err := hex.Decode(tp.ParentID[:], []byte(s[36:52])); err != nil {
		return tp, false
	}
	var fb [1]byte
	if _, err := hex.Decode(fb[:], []byte(s[53:55])); err != nil {
		return tp, false
	}
	tp.Flags = fb[0]
	if tp.TraceID == ([16]byte{}) || tp.ParentID == ([8]byte{}) {
		return tp, false
	}
	return tp, true
}

func fill(b []byte) {
	if _, err := rand.Read(b); err != nil {
		n := seq.Add(1)
		for i := range b {
			b[i] = byte(n >> (8 * (uint(i) % 8)))
		}
		b[0] |= 1 // never all-zero
	}
}
