package cdb_test

import (
	"context"
	"encoding/json"
	"os"
	"strconv"
	"testing"

	"cdb"
	"cdb/internal/dataset"
)

// The acceptance scenario of the fault-tolerant transport: the paper
// benchmark's 2-join query under a 10% drop rate, 20% stragglers, and
// a permanent blackout of one of the two markets. The benchmark size
// (rather than the 12-tuple running example) keeps F1 smooth enough
// that "degrades gracefully" is a meaningful bound.
var chaosQuery = dataset.Queries("paper")["2J"]

// chaosSeed lets CI sweep a seed matrix via CDB_CHAOS_SEED.
func chaosSeed(t *testing.T) uint64 {
	t.Helper()
	env := os.Getenv("CDB_CHAOS_SEED")
	if env == "" {
		return 1
	}
	seed, err := strconv.ParseUint(env, 10, 64)
	if err != nil {
		t.Fatalf("CDB_CHAOS_SEED=%q: %v", env, err)
	}
	return seed
}

// openChaos builds a two-market DB on the fault-tolerant transport.
// faulty adds the chaos engine; with faulty=false the async path still
// runs (WithReliability) so the fault-free baseline is an
// apples-to-apples comparison.
func openChaos(seed uint64, faulty bool) *cdb.DB {
	opts := []cdb.Option{
		cdb.WithSeed(seed),
		cdb.WithDataset("paper", 0.1, 1),
		cdb.WithMarkets(
			cdb.MarketSpec{Name: "amt", AssignControl: true, Workers: 30, Accuracy: 0.9, Stddev: 0.05},
			cdb.MarketSpec{Name: "crowdflower", AssignControl: false, Workers: 30, Accuracy: 0.9, Stddev: 0.05},
		),
		// Four backoff waves and an uncapped retry budget: enough
		// persistence that a permanent one-market outage costs a few
		// stray tasks, not whole rounds.
		cdb.WithReliability(cdb.ReliabilityPolicy{MaxRetries: 4, RetryBudget: -1}),
	}
	if faulty {
		opts = append(opts, cdb.WithFaults(cdb.FaultConfig{
			Seed:          seed,
			DropRate:      0.1,
			StragglerRate: 0.2,
			Blackouts:     []cdb.BlackoutSpec{{Market: "amt", From: 0, Until: 1 << 40}},
		}))
	}
	return cdb.Open(opts...)
}

// TestChaosEndToEnd is the robustness acceptance test: under drops,
// stragglers and a market-wide outage the query still completes, is
// flagged as a partial result, and its F1 stays within 5 points of the
// fault-free run on the same seed. When CDB_CHAOS_OUT is set, the
// faulty run's stats are written there as JSON (the CI chaos job
// uploads them as an artifact).
func TestChaosEndToEnd(t *testing.T) {
	seed := chaosSeed(t)

	clean, err := openChaos(seed, false).ExecContext(context.Background(), chaosQuery)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Stats.Partial {
		t.Fatalf("fault-free async run flagged partial: %+v", clean.Stats)
	}

	faulty, err := openChaos(seed, true).ExecContext(context.Background(), chaosQuery)
	if err != nil {
		t.Fatal(err)
	}

	// The query must complete despite one of two markets being dark for
	// the whole run, and be honest about the degradation.
	if faulty.Stats.Rounds == 0 || len(faulty.Rows) == 0 {
		t.Fatalf("faulty run produced nothing: %d rounds, %d rows", faulty.Stats.Rounds, len(faulty.Rows))
	}
	if !faulty.Stats.Partial || faulty.Stats.Reason != "tasks-lost" {
		t.Fatalf("degraded run not flagged partial/tasks-lost: %+v", faulty.Stats)
	}
	if faulty.Stats.Lost == 0 || faulty.Stats.Retried == 0 {
		t.Fatalf("blackout run should lose and retry tasks: %+v", faulty.Stats)
	}
	if len(faulty.Confidence) != len(faulty.Rows) {
		t.Fatalf("confidence entries %d, rows %d", len(faulty.Confidence), len(faulty.Rows))
	}

	// Graceful degradation: the quality hit is bounded.
	if faulty.Stats.F1 < clean.Stats.F1-0.05 {
		t.Fatalf("F1 degraded %.3f → %.3f (more than 5 points)", clean.Stats.F1, faulty.Stats.F1)
	}

	// Determinism: replaying the same seed reproduces the same partial
	// result, chaos and all.
	again, err := openChaos(seed, true).ExecContext(context.Background(), chaosQuery)
	if err != nil {
		t.Fatal(err)
	}
	if again.Stats != faulty.Stats {
		t.Fatalf("chaos not deterministic:\n first %+v\nsecond %+v", faulty.Stats, again.Stats)
	}
	if len(again.Rows) != len(faulty.Rows) {
		t.Fatalf("row count not deterministic: %d vs %d", len(again.Rows), len(faulty.Rows))
	}

	if out := os.Getenv("CDB_CHAOS_OUT"); out != "" {
		blob, err := json.MarshalIndent(map[string]any{
			"seed":   seed,
			"clean":  clean.Stats,
			"faulty": faulty.Stats,
		}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
