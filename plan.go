package cdb

import (
	"fmt"

	"cdb/internal/cql"
	"cdb/internal/exec"
	"cdb/internal/plan"
)

// Plan is a query plan as a value: the statistics-free greedy
// planner's decision for one SELECT, reported without issuing any
// crowd work. It carries the join order, per-step predicted candidate
// edges and similarity-mass histograms, early-exit points (a plan-time
// proof of zero answers means zero further HITs), and the planner's
// own estimate of tasks saved versus statement order. Its JSON schema
// is the wire format of EXPLAIN / POST /v1/explain, pinned by a
// golden-file test in client/wire_test.go.
type Plan = plan.Explained

// PlanStep is one step of a Plan.
type PlanStep = plan.Step

// PlannerConfig consolidates the query-optimizer knobs that used to be
// scattered over individual options (WithSimilarity, WithEpsilon,
// WithStrategy) and adds the greedy multi-join planner. It is accepted
// both as WithPlanner(cfg) and as Config.Planner. Zero fields keep the
// documented defaults.
type PlannerConfig struct {
	// Greedy enables greedy join ordering for SELECT execution: joins
	// run cheapest-first by live candidate-edge count, and a predicate
	// with zero surviving candidates terminates the query early with
	// zero further HITs. Answers are bit-identical to fixed-order
	// execution under the same seed (verdicts are content-pure).
	Greedy bool
	// FixedOrder runs the same planned executor in statement order —
	// the baseline greedy is measured against. Ignored when Greedy is
	// set.
	FixedOrder bool
	// Bins is the similarity-histogram resolution of plan steps
	// (0 = 8).
	Bins int

	// Similarity, Epsilon and Strategy supersede WithSimilarity,
	// WithEpsilon and WithStrategy; empty/zero values leave the DB's
	// current setting untouched.
	Similarity string
	Epsilon    float64
	Strategy   string
	// Samples supersedes the sampling depth of the mincut strategy
	// (0 keeps the default of 20).
	Samples int
}

// plannerState is the planner configuration a DB retains (the sim
// knobs of PlannerConfig fold into the DB's own fields).
type plannerState struct {
	Greedy     bool
	FixedOrder bool
	Bins       int
}

// WithPlanner applies a consolidated PlannerConfig; see Config.Planner
// for the struct-based route.
func WithPlanner(cfg PlannerConfig) Option {
	return func(db *DB) {
		db.planner.Greedy = cfg.Greedy
		db.planner.FixedOrder = cfg.FixedOrder && !cfg.Greedy
		db.planner.Bins = cfg.Bins
		if cfg.Similarity != "" {
			WithSimilarity(cfg.Similarity)(db)
		}
		if cfg.Epsilon != 0 {
			WithEpsilon(cfg.Epsilon)(db)
		}
		if cfg.Strategy != "" {
			WithStrategy(cfg.Strategy)(db)
		}
		if cfg.Samples > 0 {
			db.samples = cfg.Samples
		}
	}
}

// plannerOn reports whether SELECTs run the planned executor.
func (db *DB) plannerOn() bool { return db.planner.Greedy || db.planner.FixedOrder }

// Explain plans q without executing it — and without issuing a single
// crowd assignment — and returns the Plan. q may be a SELECT or an
// EXPLAIN SELECT (the verb unwraps to the same thing); any other
// statement fails with ErrEngineUnsupported, since only SELECTs are
// plannable.
func (db *DB) Explain(q string) (*Plan, error) {
	st, err := cql.Parse(q)
	if err != nil {
		return nil, err
	}
	if e, ok := st.(*cql.Explain); ok {
		st = e.Target
	}
	s, ok := st.(*cql.Select)
	if !ok {
		return nil, fmt.Errorf("cdb: %w: %T is not plannable; EXPLAIN takes a SELECT", ErrEngineUnsupported, st)
	}
	return db.explainSelect(s)
}

// explainSelect plans one parsed SELECT for EXPLAIN: build the query
// graph (similarity joins only — no crowd), run the greedy planner,
// and describe the decision. Greedy on the wire reports whether
// execution on this DB would actually follow the greedy order.
func (db *DB) explainSelect(s *cql.Select) (*Plan, error) {
	p, err := exec.BuildPlan(s, db.catalog, db.oracle, exec.PlanConfig{Sim: db.simFunc, Epsilon: db.epsilon})
	if err != nil {
		return nil, err
	}
	d := plan.Greedy(p, db.planner.Bins)
	return plan.Describe(p, d, db.planner.Greedy), nil
}

// execExplain serves the EXPLAIN CQL verb on the Exec path.
func (db *DB) execExplain(e *cql.Explain) (*Result, error) {
	s, ok := e.Target.(*cql.Select)
	if !ok {
		return nil, fmt.Errorf("cdb: %w: %T is not plannable; EXPLAIN takes a SELECT", ErrEngineUnsupported, e.Target)
	}
	ex, err := db.explainSelect(s)
	if err != nil {
		return nil, err
	}
	return &Result{
		Plan: ex,
		Message: fmt.Sprintf("plan %s: %d predicted tasks (fixed order %d), 0 crowd assignments",
			ex.JoinOrder, ex.PredictedTasks, ex.FixedTasks),
	}, nil
}
