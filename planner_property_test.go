package cdb_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"cdb"
	"cdb/internal/plan"
	"cdb/internal/stats"
)

// loadCase replays a generated catalog into a DB through the public
// API (CREATE TABLE + Insert), so the planned executor sees exactly
// what the generator built.
func loadCase(t *testing.T, db *cdb.DB, c plan.Case) {
	t.Helper()
	for _, name := range c.Catalog.Names() {
		tb := c.Catalog.MustGet(name)
		cols := make([]string, len(tb.Schema.Columns))
		for i, col := range tb.Schema.Columns {
			cols[i] = col.Name + " varchar(16)"
		}
		db.MustExec(fmt.Sprintf("CREATE TABLE %s (%s);", name, strings.Join(cols, ", ")))
		for _, row := range tb.Rows {
			vals := make([]string, len(row))
			for i, v := range row {
				vals[i] = v.String()
			}
			if err := db.Insert(name, vals...); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestPlannerProperties is the randomized property suite of the greedy
// planner over 3–6-table chain and star schemas:
//
//	(a) greedy-planned results are bit-identical to fixed-order
//	    execution under the same seed,
//	(b) planned crowd cost never exceeds fixed-order cost by more than
//	    the measured tolerance,
//	(c) a provably empty intermediate issues zero assignments, and
//	    EXPLAIN predicts the early exit with zero tasks.
func TestPlannerProperties(t *testing.T) {
	gen := stats.NewRNG(0xCDB9)
	cases := 40
	if testing.Short() {
		cases = 8
	}
	sawEarlyExit := false
	totalGreedy, totalFixed := 0, 0
	for i := 0; i < cases; i++ {
		nTables := 3 + gen.Intn(4)
		c := plan.RandomCase(gen, nTables)
		seed := gen.Uint64()
		t.Run(fmt.Sprintf("case%02d_t%d", i, nTables), func(t *testing.T) {
			open := func(cfg cdb.PlannerConfig) *cdb.DB {
				db := cdb.Open(
					cdb.WithSeed(seed),
					cdb.WithWorkers(25, 0.85, 0.1),
					cdb.WithPlanner(cfg),
				)
				loadCase(t, db, c)
				return db
			}
			greedyDB := open(cdb.PlannerConfig{Greedy: true})
			fixedDB := open(cdb.PlannerConfig{FixedOrder: true})

			rg := greedyDB.MustExec(c.Query)
			rf := fixedDB.MustExec(c.Query)

			// (a) Bit-identical answers, including row order.
			if !reflect.DeepEqual(rg.Rows, rf.Rows) {
				t.Fatalf("greedy answers diverge from fixed order\n query: %s\ngreedy: %v\n fixed: %v",
					c.Query, rg.Rows, rf.Rows)
			}

			// (b) Greedy never pays meaningfully more than fixed order.
			// The measured worst case over this workload is 1.67x (the
			// candidate-count heuristic cannot see run-time pruning), so
			// the per-case tolerance is 1.75x; the aggregate assertion
			// below pins the win that matters.
			limit := rf.Stats.Assignments + rf.Stats.Assignments*3/4 + 16
			if rg.Stats.Assignments > limit {
				t.Errorf("greedy cost %d exceeds fixed cost %d beyond tolerance (limit %d)",
					rg.Stats.Assignments, rf.Stats.Assignments, limit)
			}
			totalGreedy += rg.Stats.Assignments
			totalFixed += rf.Stats.Assignments

			// The executed plan rides on the Result.
			if rg.Plan == nil || !rg.Plan.Greedy {
				t.Fatalf("greedy result carries no plan: %+v", rg.Plan)
			}
			if rf.Plan == nil || rf.Plan.Greedy {
				t.Fatalf("fixed result plan = %+v, want non-greedy plan", rf.Plan)
			}

			// (c) Empty intermediates: zero assignments, zero answers, and
			// EXPLAIN proves it before spending anything.
			if c.EmptyPred >= 0 {
				sawEarlyExit = true
				if rg.Stats.Assignments != 0 {
					t.Errorf("empty pred %d: greedy still issued %d assignments", c.EmptyPred, rg.Stats.Assignments)
				}
				if len(rg.Rows) != 0 {
					t.Errorf("empty pred %d: got %d answer rows", c.EmptyPred, len(rg.Rows))
				}
				ex, err := greedyDB.Explain(c.Query)
				if err != nil {
					t.Fatalf("explain: %v", err)
				}
				if !ex.EarlyExit || ex.PredictedTasks != 0 {
					t.Errorf("explain missed the early exit: exit=%v predicted=%d", ex.EarlyExit, ex.PredictedTasks)
				}
				if !strings.HasSuffix(ex.JoinOrder, "→∅") {
					t.Errorf("join order %q lacks the early-exit marker", ex.JoinOrder)
				}
			}
		})
	}
	if !sawEarlyExit && !testing.Short() {
		t.Error("generator produced no early-exit case; property (c) untested")
	}
	// The aggregate win is a workload property; the -short subsample is
	// too small to assert it on.
	if !testing.Short() && totalGreedy > totalFixed {
		t.Errorf("greedy spent %d assignments over the workload, fixed order %d — no aggregate win", totalGreedy, totalFixed)
	}
}

// TestExplainVerbZeroSpend pins the EXPLAIN CQL verb: it returns the
// plan, spends nothing, and rejects non-SELECT targets with the typed
// unsupported error.
func TestExplainVerbZeroSpend(t *testing.T) {
	db := cdb.Open(cdb.WithSeed(7), cdb.WithWorkers(10, 0.9, 0.05), cdb.WithPlanner(cdb.PlannerConfig{Greedy: true}))
	db.MustExec(`CREATE TABLE A (x varchar(16), y varchar(16));`)
	db.MustExec(`CREATE TABLE B (x varchar(16), y varchar(16));`)
	for i := 0; i < 4; i++ {
		if err := db.Insert("A", fmt.Sprintf("u%d", i), fmt.Sprintf("k%02d", i)); err != nil {
			t.Fatal(err)
		}
		if err := db.Insert("B", fmt.Sprintf("k%02d", i), fmt.Sprintf("u%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	res := db.MustExec(`EXPLAIN SELECT * FROM A, B WHERE A.y CROWDJOIN B.x;`)
	if res.Plan == nil {
		t.Fatal("EXPLAIN returned no plan")
	}
	if res.Stats.Assignments != 0 || res.Stats.HITs != 0 {
		t.Errorf("EXPLAIN spent crowd work: %+v", res.Stats)
	}
	if len(res.Rows) != 0 {
		t.Errorf("EXPLAIN returned rows: %v", res.Rows)
	}
	if res.Plan.PredictedTasks <= 0 {
		t.Errorf("predicted tasks = %d, want > 0", res.Plan.PredictedTasks)
	}

	if _, err := db.Exec(`EXPLAIN CREATE TABLE C (z varchar(8));`); err == nil {
		t.Error("EXPLAIN CREATE TABLE succeeded, want unsupported error")
	} else if !strings.Contains(err.Error(), "not plannable") {
		t.Errorf("unexpected error: %v", err)
	}

	if _, err := db.Exec(`EXPLAIN EXPLAIN SELECT * FROM A;`); err == nil {
		t.Error("nested EXPLAIN parsed, want parse error")
	}
}
