package cdb

import "fmt"

// Config is the struct-based alternative to Open's option soup: fill
// the fields you care about, leave the rest zero, and OpenConfig
// applies the same defaults the options document. Unlike Open — which
// stays lenient for historical callers and only records invalid knobs
// on Err — OpenConfig refuses to construct a DB from an invalid
// configuration, so a typo in a dataset or strategy name is an error
// at the call site rather than a silently different experiment.
type Config struct {
	// Seed fixes the random seed; 0 means the documented default of 1.
	Seed uint64

	// Dataset optionally preloads a built-in dataset ("paper", "award"
	// or "example") with its ground-truth oracle. Empty starts with an
	// empty catalog. Scale 0 means 1.0; DatasetSeed 0 reuses Seed.
	Dataset      string
	DatasetScale float64
	DatasetSeed  uint64

	// Workers configures the simulated pool: Workers workers with
	// accuracy ~ N(WorkerAccuracy, WorkerStddev²). Zero Workers keeps
	// the default pool (50 workers, 0.8 ± 0.1). PerfectWorkers
	// installs an infallible crowd of Workers (or 50) instead.
	Workers        int
	WorkerAccuracy float64
	WorkerStddev   float64
	PerfectWorkers bool

	// Similarity names the matching-probability estimator ("2gram",
	// "token", "edit", "cosine", "none"); empty means 2gram. Epsilon
	// is the pruning threshold in (0, 1]; 0 means 0.3. Redundancy is
	// the answers per task; 0 means 5.
	Similarity string
	Epsilon    float64
	Redundancy int

	// Strategy names the task-selection strategy (see the Strategy*
	// constants); empty means StrategyCDB. QualityControl enables
	// CDB+ (EM truth inference + entropy-driven assignment).
	// Transitive enables transitive join inference (see
	// WithTransitivity): answered equalities deduce entailed labels for
	// free at the price of extra latency rounds.
	Strategy       string
	QualityControl bool
	Transitive     bool

	// Planner consolidates the optimizer knobs (see PlannerConfig):
	// greedy join ordering, histogram bins, and the similarity /
	// epsilon / strategy settings that supersede the standalone fields
	// above. Nil keeps every default; non-empty Planner fields win over
	// the standalone Similarity / Epsilon / Strategy fields.
	Planner *PlannerConfig

	// Oracle overrides the simulation ground truth (the dataset's
	// oracle, when one is loaded, is installed first).
	Oracle MatchOracle

	// Metadata enables the relational metadata store (§2.1);
	// Calibration the adaptive similarity→probability mapping (§4.1);
	// Tracing per-statement span trees on every Result.
	Metadata    bool
	Calibration bool
	Tracing     bool

	// Markets optionally deploys HITs across several crowdsourcing
	// markets instead of the single default pool.
	Markets []MarketSpec

	// Faults optionally enables the deterministic chaos engine, and
	// Reliability tunes the fault-tolerant transport's policy; see
	// WithFaults and WithReliability.
	Faults      *FaultConfig
	Reliability *ReliabilityPolicy
}

// OpenConfig creates a CDB instance from a validated Config. It is
// Open with errors: any knob Open would silently fall back on —
// unknown dataset, similarity or strategy names, out-of-range epsilon,
// non-positive redundancy or worker counts — fails construction
// instead.
func OpenConfig(cfg Config) (*DB, error) {
	var opts []Option
	if cfg.Seed != 0 {
		opts = append(opts, WithSeed(cfg.Seed))
	}
	switch {
	case cfg.PerfectWorkers:
		n := cfg.Workers
		if n == 0 {
			n = 50
		}
		if n < 0 {
			return nil, fmt.Errorf("cdb: worker count %d must be positive", n)
		}
		opts = append(opts, WithPerfectWorkers(n))
	case cfg.Workers != 0 || cfg.WorkerAccuracy != 0 || cfg.WorkerStddev != 0:
		n, mean, sd := cfg.Workers, cfg.WorkerAccuracy, cfg.WorkerStddev
		if n == 0 {
			n = 50
		}
		if mean == 0 {
			mean = 0.8
		}
		opts = append(opts, WithWorkers(n, mean, sd))
	}
	if cfg.Dataset != "" {
		scale := cfg.DatasetScale
		if scale == 0 {
			scale = 1.0
		}
		dseed := cfg.DatasetSeed
		if dseed == 0 {
			dseed = cfg.Seed
			if dseed == 0 {
				dseed = 1
			}
		}
		opts = append(opts, WithDataset(cfg.Dataset, scale, dseed))
	}
	if cfg.Oracle != nil {
		opts = append(opts, WithOracle(cfg.Oracle))
	}
	if cfg.Similarity != "" {
		opts = append(opts, WithSimilarity(cfg.Similarity))
	}
	if cfg.Epsilon != 0 {
		opts = append(opts, WithEpsilon(cfg.Epsilon))
	}
	if cfg.Redundancy != 0 {
		opts = append(opts, WithRedundancy(cfg.Redundancy))
	}
	if cfg.Strategy != "" {
		opts = append(opts, WithStrategy(cfg.Strategy))
	}
	if cfg.Planner != nil {
		opts = append(opts, WithPlanner(*cfg.Planner))
	}
	if cfg.QualityControl {
		opts = append(opts, WithQualityControl(true))
	}
	if cfg.Transitive {
		opts = append(opts, WithTransitivity(true))
	}
	if cfg.Metadata {
		opts = append(opts, WithMetadata())
	}
	if cfg.Calibration {
		opts = append(opts, WithCalibration(true))
	}
	if cfg.Tracing {
		opts = append(opts, WithTracing(true))
	}
	if len(cfg.Markets) > 0 {
		opts = append(opts, WithMarkets(cfg.Markets...))
	}
	if cfg.Faults != nil {
		opts = append(opts, WithFaults(*cfg.Faults))
	}
	if cfg.Reliability != nil {
		opts = append(opts, WithReliability(*cfg.Reliability))
	}
	db := Open(opts...)
	if err := db.Err(); err != nil {
		return nil, err
	}
	return db, nil
}
