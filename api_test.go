package cdb

import (
	"os"
	"strconv"
	"strings"
	"testing"
)

func TestQuickstartRunningExample(t *testing.T) {
	db := Open(WithDataset("example", 0, 1), WithPerfectWorkers(30), WithSeed(7))
	res, err := db.Exec(`SELECT Researcher.name, Citation.number
		FROM Paper, Researcher, Citation, University
		WHERE Paper.author CROWDJOIN Researcher.name AND
		      Paper.title CROWDJOIN Citation.title AND
		      Researcher.affiliation CROWDJOIN University.name;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("answers = %d, want the paper's 3", len(res.Rows))
	}
	if res.Stats.Recall < 0.99 || res.Stats.Precision < 0.99 {
		t.Fatalf("stats = %+v", res.Stats)
	}
	if res.Stats.Tasks == 0 || res.Stats.Rounds == 0 || res.Stats.Dollars <= 0 {
		t.Fatalf("missing stats: %+v", res.Stats)
	}
	if len(res.Columns) != 2 || res.Columns[0] != "Researcher.name" {
		t.Fatalf("columns = %v", res.Columns)
	}
}

func TestCreateInsertSelect(t *testing.T) {
	db := Open(WithPerfectWorkers(20), WithSeed(3))
	db.MustExec(`CREATE TABLE Person (name varchar(64), city varchar(32));`)
	db.MustExec(`CREATE TABLE Town (city varchar(32), country varchar(32));`)
	if err := db.Insert("Person", "Alice Smith", "Springfield"); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("Person", "Bob Jones", "Shelbyville"); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("Town", "Springfield", "USA"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(`SELECT Person.name, Town.country FROM Person, Town
		WHERE Person.city CROWDJOIN Town.city;`)
	if err != nil {
		t.Fatal(err)
	}
	// ExactOracle: only the identical "Springfield" pair truly joins.
	if len(res.Rows) != 1 || res.Rows[0][0] != "Alice Smith" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestInsertErrors(t *testing.T) {
	db := Open()
	if err := db.Insert("ghost", "x"); err == nil {
		t.Fatal("insert into missing table should fail")
	}
	db.MustExec(`CREATE TABLE T (a varchar(8), n int);`)
	if err := db.Insert("T", "only-one"); err == nil {
		t.Fatal("arity mismatch should fail")
	}
	if err := db.Insert("T", "x", "notanint"); err == nil {
		t.Fatal("type mismatch should fail")
	}
	if _, err := db.Exec(`CREATE TABLE T (a varchar(8));`); err == nil {
		t.Fatal("duplicate create should fail")
	}
}

func TestDumpAndTableNames(t *testing.T) {
	db := Open(WithDataset("example", 0, 1))
	names := db.TableNames()
	if len(names) != 4 {
		t.Fatalf("names = %v", names)
	}
	rows, err := db.Dump("Paper")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 || rows[0][0] != "author" {
		t.Fatalf("dump shape: %d rows, header %v", len(rows), rows[0])
	}
	if _, err := db.Dump("ghost"); err == nil {
		t.Fatal("dump of missing table should fail")
	}
}

func TestStrategySelection(t *testing.T) {
	for _, strat := range []string{StrategyCDB, StrategyMinCut, StrategyCrowdDB, StrategyQurk,
		StrategyDeco, StrategyOptTree, StrategyTrans, StrategyACD} {
		db := Open(WithDataset("example", 0, 1), WithPerfectWorkers(30), WithStrategy(strat), WithSeed(11))
		res, err := db.Exec(`SELECT * FROM Paper, Researcher, Citation, University
			WHERE Paper.author CROWDJOIN Researcher.name AND
			      Paper.title CROWDJOIN Citation.title AND
			      Researcher.affiliation CROWDJOIN University.name;`)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if res.Stats.Recall < 0.99 {
			t.Fatalf("%s recall = %v", strat, res.Stats.Recall)
		}
	}
}

func TestBudgetViaCQL(t *testing.T) {
	db := Open(WithDataset("example", 0, 1), WithPerfectWorkers(30), WithSeed(5))
	res, err := db.Exec(`SELECT * FROM Paper, Researcher, Citation, University
		WHERE Paper.author CROWDJOIN Researcher.name AND
		      Paper.title CROWDJOIN Citation.title AND
		      Researcher.affiliation CROWDJOIN University.name
		BUDGET 6;`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Tasks > 6 {
		t.Fatalf("budget overrun: %+v", res.Stats)
	}
}

func TestQualityControlMode(t *testing.T) {
	db := Open(WithDataset("example", 0, 1), WithWorkers(25, 0.75, 0.1), WithQualityControl(true), WithSeed(9))
	res, err := db.Exec(`SELECT * FROM Paper, Citation WHERE Paper.title CROWDJOIN Citation.title;`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.F1 == 0 && len(res.Rows) == 0 {
		t.Log("no answers at this noise level — acceptable but unusual")
	}
}

func TestFillStatement(t *testing.T) {
	db := Open(WithPerfectWorkers(20), WithSeed(13),
		WithFillTruth(func(tbl string, row int, col string) string { return "Massachusetts" }))
	db.MustExec(`CREATE TABLE Uni (name varchar(64), state CROWD varchar(32));`)
	if err := db.Insert("Uni", "MIT", "CNULL"); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("Uni", "Harvard", "CNULL"); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("Uni", "Stanford", "California"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(`FILL Uni.state;`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Tasks != 2 {
		t.Fatalf("filled %d cells, want 2 (one was already set)", res.Stats.Tasks)
	}
	rows, _ := db.Dump("Uni")
	for _, r := range rows[1:3] {
		if r[1] != "Massachusetts" {
			t.Fatalf("fill result = %v", r)
		}
	}
	// Early stop with perfect workers: 3 assignments per cell, not 5.
	if res.Stats.Assignments != 6 {
		t.Fatalf("assignments = %d, want 6 (early stop at 3 agreeing)", res.Stats.Assignments)
	}
}

func TestFillRequiresCrowdColumn(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE T (a varchar(8), b varchar(8));`)
	if _, err := db.Exec(`FILL T.a;`); err == nil || !strings.Contains(err.Error(), "CROWD") {
		t.Fatalf("expected CROWD-column error, got %v", err)
	}
}

func TestFillWithWhere(t *testing.T) {
	db := Open(WithPerfectWorkers(20), WithSeed(17),
		WithFillTruth(func(string, int, string) string { return "yes" }))
	db.MustExec(`CREATE TABLE R (name varchar(32), gender varchar(16), tenured CROWD varchar(8));`)
	_ = db.Insert("R", "a", "female", "CNULL")
	_ = db.Insert("R", "b", "male", "CNULL")
	res, err := db.Exec(`FILL R.tenured WHERE R.gender = 'female';`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Tasks != 1 {
		t.Fatalf("filled %d, want 1 (WHERE filter)", res.Stats.Tasks)
	}
	rows, _ := db.Dump("R")
	if rows[1][2] != "yes" || rows[2][2] != "CNULL" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestCollectStatement(t *testing.T) {
	universe := []string{"MIT", "Stanford", "CMU", "Berkeley", "Oxford"}
	db := Open(WithPerfectWorkers(20), WithSeed(19),
		WithCollectUniverse("University", universe))
	db.MustExec(`CREATE CROWD TABLE University (name varchar(64), country CROWD varchar(32));`)
	res, err := db.Exec(`COLLECT University.name BUDGET 50;`)
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := db.Dump("University")
	if len(rows)-1 != len(universe) {
		t.Fatalf("collected %d rows, want the full universe %d (message: %s)", len(rows)-1, len(universe), res.Message)
	}
	if res.Stats.Tasks > 50 {
		t.Fatalf("collect exceeded budget: %+v", res.Stats)
	}
	// Secondary column left CNULL for a later FILL.
	if rows[1][1] != "CNULL" {
		t.Fatalf("secondary column = %q", rows[1][1])
	}
}

func TestCollectErrors(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE Plain (name varchar(8));`)
	if _, err := db.Exec(`COLLECT Plain.name;`); err == nil || !strings.Contains(err.Error(), "CROWD") {
		t.Fatalf("want CROWD-table error, got %v", err)
	}
	db.MustExec(`CREATE CROWD TABLE C (name varchar(8));`)
	if _, err := db.Exec(`COLLECT C.name;`); err == nil || !strings.Contains(err.Error(), "universe") {
		t.Fatalf("want universe error, got %v", err)
	}
	if _, err := db.Exec(`COLLECT Ghost.name;`); err == nil {
		t.Fatal("unknown table should fail")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (int, int) {
		db := Open(WithDataset("example", 0, 1), WithWorkers(25, 0.8, 0.1), WithSeed(23))
		res := db.MustExec(`SELECT * FROM Paper, Citation WHERE Paper.title CROWDJOIN Citation.title;`)
		return res.Stats.Tasks, len(res.Rows)
	}
	t1, r1 := run()
	t2, r2 := run()
	if t1 != t2 || r1 != r2 {
		t.Fatalf("replay diverged: (%d,%d) vs (%d,%d)", t1, r1, t2, r2)
	}
}

func TestGeneratedDatasetOption(t *testing.T) {
	db := Open(WithDataset("paper", 0.05, 2), WithPerfectWorkers(20))
	if len(db.TableNames()) != 4 {
		t.Fatalf("tables = %v", db.TableNames())
	}
	res, err := db.Exec(`SELECT Paper.title, Citation.number FROM Paper, Citation
		WHERE Paper.title CROWDJOIN Citation.title;`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Recall < 0.99 {
		t.Fatalf("recall = %v", res.Stats.Recall)
	}
}

func TestParseErrorSurfaces(t *testing.T) {
	db := Open()
	if _, err := db.Exec(`SELEKT * FROM x`); err == nil {
		t.Fatal("bad CQL should error")
	}
}

func TestCrossMarketOption(t *testing.T) {
	db := Open(
		WithDataset("example", 0, 1),
		WithSeed(29),
		WithMarkets(
			MarketSpec{Name: "AMT", AssignControl: true, Workers: 20, Accuracy: 0.95, Stddev: 0.03},
			MarketSpec{Name: "ChinaCrowd", Workers: 20, Accuracy: 0.9, Stddev: 0.05},
		),
	)
	res, err := db.Exec(`SELECT * FROM Paper, Citation WHERE Paper.title CROWDJOIN Citation.title;`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Tasks == 0 {
		t.Fatalf("no tasks issued: %+v", res.Stats)
	}
}

func TestOrderByViaCQL(t *testing.T) {
	db := Open(WithDataset("example", 0, 1), WithPerfectWorkers(30), WithSeed(33))
	res, err := db.Exec(`SELECT Paper.title, Citation.number
		FROM Paper, Citation
		WHERE Paper.title CROWDJOIN Citation.title
		ORDER BY Citation.number;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	prev := -1
	for _, r := range res.Rows {
		n, err := strconv.Atoi(r[1])
		if err != nil {
			t.Fatal(err)
		}
		if n < prev {
			t.Fatalf("not sorted: %v", res.Rows)
		}
		prev = n
	}
}

func TestGroupByViaCQL(t *testing.T) {
	db := Open(WithDataset("example", 0, 1), WithPerfectWorkers(30), WithSeed(35))
	res, err := db.Exec(`SELECT Paper.conference
		FROM Paper, Citation
		WHERE Paper.title CROWDJOIN Citation.title
		GROUP BY Paper.conference;`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Columns[len(res.Columns)-1] != "group_count" {
		t.Fatalf("columns = %v", res.Columns)
	}
	// All "sigmod*" variants collapse into one group; "sigir" (if
	// present among the answers) stays separate.
	sigmodGroups := 0
	for _, r := range res.Rows {
		if strings.Contains(strings.ToLower(r[0]), "sigmod") {
			sigmodGroups++
		}
	}
	if sigmodGroups != 1 {
		t.Fatalf("sigmod variants should form one group: %v", res.Rows)
	}
}

func TestGroupByRequiresProjectedColumn(t *testing.T) {
	db := Open(WithDataset("example", 0, 1), WithPerfectWorkers(10))
	_, err := db.Exec(`SELECT Paper.title FROM Paper, Citation
		WHERE Paper.title CROWDJOIN Citation.title
		GROUP BY Paper.conference;`)
	if err == nil || !strings.Contains(err.Error(), "projection") {
		t.Fatalf("want projection error, got %v", err)
	}
}

func TestMetadataOption(t *testing.T) {
	db := Open(WithDataset("example", 0, 1), WithPerfectWorkers(20), WithMetadata(), WithSeed(37))
	res := db.MustExec(`SELECT * FROM Paper, Citation WHERE Paper.title CROWDJOIN Citation.title;`)
	store := db.Metadata()
	if store == nil {
		t.Fatal("metadata store missing")
	}
	if store.Tasks().Len() != res.Stats.Tasks {
		t.Fatalf("recorded %d tasks, stats say %d", store.Tasks().Len(), res.Stats.Tasks)
	}
	st := store.ComputeStats()
	if st.Assignments != res.Stats.Assignments {
		t.Fatalf("assignments mismatch: %d vs %d", st.Assignments, res.Stats.Assignments)
	}
}

func TestCalibrationOption(t *testing.T) {
	db := Open(WithDataset("paper", 0.06, 5), WithPerfectWorkers(20), WithCalibration(true), WithSeed(39))
	res, err := db.Exec(`SELECT Paper.title, Citation.number FROM Paper, Citation
		WHERE Paper.title CROWDJOIN Citation.title;`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Recall < 0.99 {
		t.Fatalf("calibrated run recall = %v", res.Stats.Recall)
	}
}

// TestPerfectCrowdAlwaysExact is an end-to-end property test: with an
// infallible crowd, every strategy on every generated instance must
// return exactly the ground-truth answers.
func TestPerfectCrowdAlwaysExact(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		for _, q := range []string{"2J", "2J1S"} {
			db := Open(WithDataset("paper", 0.05, seed), WithPerfectWorkers(25), WithSeed(seed))
			query := queriesForTest(q)
			res, err := db.Exec(query)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, q, err)
			}
			if res.Stats.Precision < 1 || res.Stats.Recall < 1 {
				t.Fatalf("seed %d %s: P=%v R=%v", seed, q, res.Stats.Precision, res.Stats.Recall)
			}
		}
	}
}

func queriesForTest(label string) string {
	switch label {
	case "2J1S":
		return `SELECT Paper.title, Researcher.affiliation, Citation.number
			FROM Paper, Citation, Researcher
			WHERE Paper.title CROWDJOIN Citation.title AND
			      Paper.author CROWDJOIN Researcher.name AND
			      Paper.conference CROWDEQUAL "sigmod";`
	default:
		return `SELECT Paper.title, Researcher.affiliation, Citation.number
			FROM Paper, Citation, Researcher
			WHERE Paper.title CROWDJOIN Citation.title AND
			      Paper.author CROWDJOIN Researcher.name;`
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	src := Open(WithDataset("example", 0, 1))
	if err := src.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	dst := Open(WithPerfectWorkers(20), WithSeed(43))
	if err := dst.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	if len(dst.TableNames()) != 4 {
		t.Fatalf("loaded tables = %v", dst.TableNames())
	}
	a, _ := src.Dump("Paper")
	b, _ := dst.Dump("Paper")
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("cell (%d,%d): %q vs %q", i, j, a[i][j], b[i][j])
			}
		}
	}
	// The reloaded catalog still answers queries (exact oracle now, so
	// only identical pairs join; the plan must at least build).
	if _, err := dst.Exec(`SELECT * FROM Paper, Citation WHERE Paper.title CROWDJOIN Citation.title;`); err != nil {
		t.Fatal(err)
	}
}

func TestLoadDirErrors(t *testing.T) {
	db := Open()
	if err := db.LoadDir("/nonexistent-dir-xyz"); err == nil {
		t.Fatal("missing dir accepted")
	}
	dir := t.TempDir()
	if err := os.WriteFile(dir+"/Bad.schema", []byte("nonsense"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := db.LoadDir(dir); err == nil {
		t.Fatal("bad schema accepted")
	}
}

func TestCyclicQueryEndToEnd(t *testing.T) {
	// Three mutually joined tables — a cyclic join structure (§5.1.1's
	// graph case). Validity falls back to backtracking and the MinCut
	// sampler works over the cycle-broken linearization.
	for _, strat := range []string{StrategyCDB, StrategyMinCut} {
		db := Open(WithPerfectWorkers(20), WithSeed(47), WithStrategy(strat), WithEpsilon(0.2))
		db.MustExec(`CREATE TABLE A (x varchar(16), y varchar(16));`)
		db.MustExec(`CREATE TABLE B (x varchar(16), y varchar(16));`)
		db.MustExec(`CREATE TABLE C (x varchar(16), y varchar(16));`)
		// One true triangle (alpha) and one broken one (beta/gamma).
		_ = db.Insert("A", "alpha", "alpha")
		_ = db.Insert("B", "alpha", "alpha")
		_ = db.Insert("C", "alpha", "alpha")
		_ = db.Insert("A", "beta", "beta")
		_ = db.Insert("B", "beta", "betb") // similar but unequal: red edge
		_ = db.Insert("C", "beta", "beta")
		res, err := db.Exec(`SELECT A.x, B.x, C.x FROM A, B, C
			WHERE A.x CROWDJOIN B.x AND B.y CROWDJOIN C.y AND C.x CROWDJOIN A.y;`)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if res.Stats.Recall < 1 || res.Stats.Precision < 1 {
			t.Fatalf("%s: stats %+v rows %v", strat, res.Stats, res.Rows)
		}
		if len(res.Rows) != 1 || res.Rows[0][0] != "alpha" {
			t.Fatalf("%s: rows = %v", strat, res.Rows)
		}
	}
}

func TestCollectBudgetExhaustion(t *testing.T) {
	universe := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	db := Open(WithWorkers(10, 0.5, 0.1), WithSeed(53),
		WithCollectUniverse("U", universe))
	db.MustExec(`CREATE CROWD TABLE U (name varchar(8));`)
	res := db.MustExec(`COLLECT U.name BUDGET 3;`)
	if res.Stats.Tasks > 3 {
		t.Fatalf("budget exceeded: %+v", res.Stats)
	}
	rows, _ := db.Dump("U")
	if len(rows)-1 > 3 {
		t.Fatalf("collected %d rows on budget 3", len(rows)-1)
	}
	// A second COLLECT resumes where the first stopped (already-present
	// rows are recognized).
	res2 := db.MustExec(`COLLECT U.name BUDGET 100;`)
	rows, _ = db.Dump("U")
	if len(rows)-1 != len(universe) {
		t.Fatalf("resume collected %d rows, want %d (%s)", len(rows)-1, len(universe), res2.Message)
	}
}

func TestFillWithoutTruthFunc(t *testing.T) {
	// Without WithFillTruth the machinery still runs, drawing a value
	// from the column's existing pool.
	db := Open(WithPerfectWorkers(10), WithSeed(57))
	db.MustExec(`CREATE TABLE T (name varchar(8), tag CROWD varchar(8));`)
	_ = db.Insert("T", "a", "known")
	_ = db.Insert("T", "b", "CNULL")
	res := db.MustExec(`FILL T.tag;`)
	if res.Stats.Tasks != 1 {
		t.Fatalf("tasks = %d", res.Stats.Tasks)
	}
	rows, _ := db.Dump("T")
	if rows[2][1] == "CNULL" {
		t.Fatal("cell left unfilled")
	}
}

func TestBenchDeterminism(t *testing.T) {
	// The whole experiment harness is replayable: same config, same
	// rows.
	run := func() string {
		db := Open(WithDataset("paper", 0.04, 3), WithWorkers(20, 0.8, 0.1), WithSeed(61))
		res := db.MustExec(`SELECT Paper.title, Citation.number FROM Paper, Citation
			WHERE Paper.title CROWDJOIN Citation.title;`)
		return res.Message
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %q vs %q", a, b)
	}
}
