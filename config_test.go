package cdb

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

// TestOpenConfigDefaults pins that a zero Config constructs a working
// empty-catalog instance and that filled fields apply the documented
// defaults (Scale 0 → 1.0, DatasetSeed 0 → Seed).
func TestOpenConfigDefaults(t *testing.T) {
	db, err := OpenConfig(Config{})
	if err != nil {
		t.Fatalf("OpenConfig(zero) = %v", err)
	}
	if err := db.Err(); err != nil {
		t.Fatalf("Err() after valid OpenConfig = %v", err)
	}
	if got := db.TableNames(); len(got) != 0 {
		t.Errorf("zero Config preloaded tables %v", got)
	}

	db, err = OpenConfig(Config{Dataset: "example", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Citation", "Paper", "Researcher", "University"}
	if got := db.TableNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("TableNames() = %v, want %v", got, want)
	}
}

// TestOpenConfigEquivalence pins that OpenConfig is a pure translation
// to Open's options: the same knobs yield bit-identical query results.
func TestOpenConfigEquivalence(t *testing.T) {
	const q = `SELECT * FROM Paper, Researcher WHERE Paper.author CROWDJOIN Researcher.name;`
	a, err := OpenConfig(Config{Dataset: "example", Seed: 11, Workers: 40, WorkerAccuracy: 0.9, WorkerStddev: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	b := Open(
		WithSeed(11),
		WithWorkers(40, 0.9, 0.05),
		WithDataset("example", 1.0, 11),
	)
	ra, err := a.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ra, rb) {
		t.Errorf("OpenConfig result differs from equivalent Open:\n%+v\n%+v", ra, rb)
	}
}

// TestOpenConfigInvalid pins that every knob Open silently falls back
// on fails OpenConfig with an error naming the bad value.
func TestOpenConfigInvalid(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"dataset", Config{Dataset: "imdb"}, `unknown dataset "imdb"`},
		{"similarity", Config{Similarity: "3gram"}, `unknown similarity "3gram"`},
		{"strategy", Config{Strategy: "greedy"}, `unknown strategy "greedy"`},
		{"epsilon-high", Config{Epsilon: 1.5}, "epsilon 1.5 out of range"},
		{"epsilon-negative", Config{Epsilon: -0.1}, "epsilon -0.1 out of range"},
		{"redundancy", Config{Redundancy: -3}, "redundancy -3 must be positive"},
		{"workers", Config{Workers: -5}, "worker count -5 must be positive"},
		{"accuracy", Config{WorkerAccuracy: 1.7}, "accuracy 1.7 out of range"},
		{"stddev", Config{Workers: 10, WorkerAccuracy: 0.8, WorkerStddev: -1}, "stddev -1 must be non-negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db, err := OpenConfig(tc.cfg)
			if err == nil {
				t.Fatalf("OpenConfig(%+v) succeeded, want error %q", tc.cfg, tc.want)
			}
			if db != nil {
				t.Errorf("OpenConfig returned a DB alongside the error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestOpenLenientErr pins Open's backward-compatible contract: invalid
// knobs never fail construction, but every one is recorded and
// surfaced — joined — by Err.
func TestOpenLenientErr(t *testing.T) {
	db := Open(
		WithDataset("imdb", 1, 1),
		WithEpsilon(2),
		WithStrategy("greedy"),
	)
	if db == nil {
		t.Fatal("Open returned nil for invalid options")
	}
	err := db.Err()
	if err == nil {
		t.Fatal("Err() = nil after three invalid options")
	}
	for _, want := range []string{`unknown dataset "imdb"`, "epsilon 2 out of range", `unknown strategy "greedy"`} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("Err() %q does not mention %q", err, want)
		}
	}
	// The fallback behaviour is preserved: the bogus dataset name still
	// loads the paper dataset, as Open always did.
	if got := db.TableNames(); len(got) == 0 {
		t.Errorf("lenient Open did not fall back to a loaded dataset")
	}
}

// TestTypedErrors pins the errors.Is/As contract of the exported
// sentinels at their library-level sites.
func TestTypedErrors(t *testing.T) {
	db := Open(WithDataset("example", 0, 1), WithPerfectWorkers(10))

	// CQL syntax error → *ParseError with a position.
	_, err := db.Exec("SELECT * FORM Paper;")
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("syntax error = %v (%T), want *ParseError", err, err)
	}
	if pe.Offset < 0 || pe.Near == "" {
		t.Errorf("ParseError lacks a position: offset %d near %q", pe.Offset, pe.Near)
	}

	// Unknown table in FROM → ErrUnknownTable.
	_, err = db.Exec("SELECT * FROM Nonesuch, Paper WHERE Nonesuch.a CROWDJOIN Paper.title;")
	if !errors.Is(err, ErrUnknownTable) {
		t.Fatalf("unknown FROM table = %v, want ErrUnknownTable", err)
	}

	// Unknown table in INSERT → ErrUnknownTable.
	if err := db.Insert("Nonesuch", "x"); !errors.Is(err, ErrUnknownTable) {
		t.Fatalf("Insert into missing table = %v, want ErrUnknownTable", err)
	}

	// Unknown table in COLLECT → ErrUnknownTable.
	_, err = db.Exec("COLLECT Nonesuch.x;")
	if !errors.Is(err, ErrUnknownTable) {
		t.Fatalf("COLLECT on missing table = %v, want ErrUnknownTable", err)
	}
}
