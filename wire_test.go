package cdb

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestResultWireSchema pins the JSON wire schema of Result and Stats —
// the payloads cmd/cdbd serves and client/ decodes. A renamed or
// retyped field changes the serialized form and fails here: that is a
// breaking protocol change and must be made deliberately (run with
// -update and bump the API notes in DESIGN.md §12), not discovered by
// a remote client.
func TestResultWireSchema(t *testing.T) {
	// Every field populated with distinguishable values, including the
	// omitempty ones, so the golden file shows the complete schema.
	res := &Result{
		Columns: []string{"Paper.title", "Researcher.name"},
		Rows: [][]string{
			{"Crowdsourced Data Management", "Guoliang Li"},
			{"Truth Inference in Crowdsourcing", "Yudian Zheng"},
		},
		Message: "2 answers, 7 tasks, 3 rounds",
		Stats: Stats{
			Tasks:       7,
			Rounds:      3,
			Assignments: 35,
			HITs:        4,
			Dollars:     0.4,
			Precision:   0.98,
			Recall:      0.96,
			F1:          0.9699,

			Partial:         true,
			Reason:          "deadline",
			Lost:            1,
			Retried:         2,
			Hedged:          3,
			Late:            4,
			Duplicates:      5,
			RoundsTruncated: 1,

			Coalesced:   6,
			CachedTasks: 2,

			Inferred: 3,
		},
		Confidence: []float64{1, 0.875},
		Provenance: []AnswerProvenance{
			{Crowd: 4, Inferred: 2, Prior: 1},
			{Crowd: 3},
		},
		RequestID: "req-0123456789abcdef",
	}
	got, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "result_wire.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run `go test -run TestResultWireSchema -update` after a deliberate schema change)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("Result wire schema drifted from %s — this breaks remote clients.\ngot:\n%s\nwant:\n%s", path, got, want)
	}

	// The zero value must stay lean: omitempty fields absent, so
	// partial/sharing telemetry only appears when it fired.
	lean, err := json.Marshal(&Result{Message: "table created"})
	if err != nil {
		t.Fatal(err)
	}
	const wantLean = `{"message":"table created","stats":{"tasks":0,"rounds":0,"assignments":0,"hits":0,"dollars":0,"precision":0,"recall":0,"f1":0}}`
	if string(lean) != wantLean {
		t.Errorf("zero-value wire form drifted:\ngot  %s\nwant %s", lean, wantLean)
	}
}

// TestRoundUpdateWireSchema pins the streaming event payload the same
// way: one RoundUpdate per completed crowd round crosses the wire on
// POST /v1/query/stream.
func TestRoundUpdateWireSchema(t *testing.T) {
	u := RoundUpdate{
		Round:            2,
		Tasks:            5,
		Assignments:      25,
		Blue:             3,
		Red:              2,
		Inferred:         4,
		TasksTotal:       12,
		AssignmentsTotal: 60,
		Open:             9,
	}
	got, err := json.Marshal(u)
	if err != nil {
		t.Fatal(err)
	}
	const want = `{"round":2,"tasks":5,"assignments":25,"blue":3,"red":2,"tasks_total":12,"assignments_total":60,"open":9,"inferred":4}`
	if string(got) != want {
		t.Errorf("RoundUpdate wire schema drifted:\ngot  %s\nwant %s", got, want)
	}

	// Inferred is omitempty: a round without inference serializes
	// exactly as it did before the field existed.
	u.Inferred = 0
	got, err = json.Marshal(u)
	if err != nil {
		t.Fatal(err)
	}
	const wantLean = `{"round":2,"tasks":5,"assignments":25,"blue":3,"red":2,"tasks_total":12,"assignments_total":60,"open":9}`
	if string(got) != wantLean {
		t.Errorf("RoundUpdate zero-inference wire form drifted:\ngot  %s\nwant %s", got, wantLean)
	}
}
