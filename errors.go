package cdb

import (
	"cdb/internal/cql"
	"cdb/internal/engine"
	"cdb/internal/table"
)

// Typed errors. Every error the library returns that a caller might
// want to branch on is (or wraps) one of these sentinels, so
// errors.Is / errors.As replace string matching — and a network
// front-end can map them to status codes (ErrOverloaded → 429,
// ErrUnknownTable → 404, ParseError → 400).
var (
	// ErrOverloaded is Engine backpressure: the in-flight and queued
	// slots are all taken and the submission was shed. Retry later.
	// Identical to ErrEngineOverloaded (the older name, kept working).
	ErrOverloaded = engine.ErrOverloaded

	// ErrUnknownTable marks a reference to a table the catalog does not
	// hold, wherever it is resolved: Insert, Dump, FILL/COLLECT targets
	// and SELECT FROM clauses all wrap it.
	ErrUnknownTable = table.ErrUnknownTable
)

// ParseError is a CQL syntax error carrying the byte offset and the
// offending token. Exec, Engine.Submit and OpenConfig return one (use
// errors.As) whenever the statement text itself is the problem.
type ParseError = cql.ParseError
