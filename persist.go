package cdb

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"cdb/internal/table"
)

// SaveDir writes every catalog table to dir as <name>.csv plus a
// <name>.schema sidecar describing column types and CROWD flags, so a
// database can be reloaded with LoadDir. Existing files are
// overwritten.
//
// Each file is written crash-safely: the content goes to a temp file
// in the same directory, is synced, and is renamed into place — a
// crash mid-save can leave a stale table or an orphaned temp file,
// never a torn one.
func (db *DB) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("cdb: %w", err)
	}
	for _, name := range db.catalog.Names() {
		tb, _ := db.catalog.Get(name)
		if err := writeFileAtomic(filepath.Join(dir, name+".csv"), tb.WriteCSV); err != nil {
			return fmt.Errorf("cdb: %w", err)
		}
		schema := encodeSchema(tb.Schema)
		if err := writeFileAtomic(filepath.Join(dir, name+".schema"), func(w io.Writer) error {
			_, err := io.WriteString(w, schema)
			return err
		}); err != nil {
			return fmt.Errorf("cdb: %w", err)
		}
	}
	return nil
}

// writeFileAtomic streams write's output into a temp file next to path
// and renames it into place, syncing first so the rename publishes
// complete content.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := write(tmp); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	// CreateTemp files are 0600; match the 0644 the old os.Create /
	// os.WriteFile path produced before publishing.
	if err := tmp.Chmod(0o644); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// LoadDir loads every <name>.csv / <name>.schema pair from dir into
// the catalog, replacing tables with the same name.
func (db *DB) LoadDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("cdb: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".schema") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".schema")
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return fmt.Errorf("cdb: %w", err)
		}
		schema, err := decodeSchema(string(raw))
		if err != nil {
			return fmt.Errorf("cdb: %s: %w", name, err)
		}
		f, err := os.Open(filepath.Join(dir, name+".csv"))
		if err != nil {
			return fmt.Errorf("cdb: %w", err)
		}
		tb, err := table.ReadCSV(schema, f)
		f.Close()
		if err != nil {
			return fmt.Errorf("cdb: %s: %w", name, err)
		}
		db.catalog.Register(tb)
	}
	return nil
}

// encodeSchema renders one line per column: name kind crowd, preceded
// by a table line.
func encodeSchema(s table.Schema) string {
	var b strings.Builder
	crowd := ""
	if s.CrowdTable {
		crowd = " CROWD"
	}
	fmt.Fprintf(&b, "table %s%s\n", s.Name, crowd)
	for _, c := range s.Columns {
		flag := ""
		if c.Crowd {
			flag = " CROWD"
		}
		fmt.Fprintf(&b, "column %s %s%s\n", c.Name, c.Kind, flag)
	}
	return b.String()
}

func decodeSchema(raw string) (table.Schema, error) {
	var s table.Schema
	for _, line := range strings.Split(strings.TrimSpace(raw), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return s, fmt.Errorf("bad schema line %q", line)
		}
		switch fields[0] {
		case "table":
			s.Name = fields[1]
			s.CrowdTable = len(fields) > 2 && fields[2] == "CROWD"
		case "column":
			if len(fields) < 3 {
				return s, fmt.Errorf("bad column line %q", line)
			}
			var kind table.Kind
			switch fields[2] {
			case "string":
				kind = table.String
			case "int":
				kind = table.Int
			case "float":
				kind = table.Float
			default:
				return s, fmt.Errorf("unknown kind %q", fields[2])
			}
			s.Columns = append(s.Columns, table.Column{
				Name:  fields[1],
				Kind:  kind,
				Crowd: len(fields) > 3 && fields[3] == "CROWD",
			})
		default:
			return s, fmt.Errorf("unknown schema directive %q", fields[0])
		}
	}
	if s.Name == "" {
		return s, fmt.Errorf("schema missing table line")
	}
	return s, nil
}
